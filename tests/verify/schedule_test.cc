// Schedule-exploration sweeps (the `verify` ctest label).  Smoke-tier seed
// counts by default; EXHASH_VERIFY_SWEEP=N scales any of these to a long
// campaign (the acceptance runs use 10000+).  A failure prints the seed; to
// replay it, run the same test with EXHASH_VERIFY_SWEEP set so the sweep
// reaches that seed, or see tests/README.md for the one-seed recipe.

#include "verify/schedule.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "core/ellis_v1.h"
#include "core/ellis_v2.h"
#include "verify/linearize.h"

#if defined(__SANITIZE_THREAD__)
#define EXHASH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EXHASH_TSAN 1
#endif
#endif

namespace exhash::verify {
namespace {

// TSan runs every interleaving ~10x slower; the sweep budget shrinks so the
// suite still fits the smoke tier (the races TSan finds don't need many
// seeds — it checks orderings, not outcomes).
#ifdef EXHASH_TSAN
constexpr uint64_t kSmokeSeeds = 40;
#else
constexpr uint64_t kSmokeSeeds = 200;
#endif

core::TableOptions SmallOptions() {
  core::TableOptions options;
  options.page_size = 112;  // capacity 4: constant splits/merges
  options.initial_depth = 1;
  options.max_depth = 16;
  return options;
}

std::unique_ptr<core::KeyValueIndex> MakeV1() {
  return std::make_unique<core::EllisHashTableV1>(SmallOptions());
}
std::unique_ptr<core::KeyValueIndex> MakeV2() {
  return std::make_unique<core::EllisHashTableV2>(SmallOptions());
}

TEST(ScheduleTest, HooksFireAndHistoryIsComplete) {
  auto table = MakeV1();
  ScheduleConfig config;
  config.seed = 7;
  const ScheduleOutcome outcome = RunOneSchedule(table.get(), config);
  EXPECT_TRUE(outcome.ok) << outcome.report;
  EXPECT_EQ(outcome.ops, uint64_t(config.threads) * config.ops_per_thread);
  // The yield points in the lock paths actually fired.
  EXPECT_GT(outcome.points, 0u);
}

TEST(ScheduleTest, V1RandomYieldSweep) {
  ScheduleConfig config;
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakeV1, config, seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  EXPECT_EQ(sweep.schedules, seeds);
}

TEST(ScheduleTest, V2RandomYieldSweep) {
  ScheduleConfig config;
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakeV2, config, seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
}

// Paged configuration (DESIGN.md §11): a page budget far below the bucket
// population keeps the pool's kPoolEvict/kPoolReload windows open inside
// every schedule, so the sweep interleaves evictions and reloads with the
// seqlock read path and the restructure locks.  Budget 6 over a run that
// peaks at dozens of pages ≈ the 1/8 paged tier.
std::unique_ptr<core::KeyValueIndex> MakePagedV2() {
  auto options = SmallOptions();
  options.page_budget = 6;
  return std::make_unique<core::EllisHashTableV2>(options);
}

TEST(ScheduleTest, V2PagedRandomYieldSweep) {
  ScheduleConfig config;
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakePagedV2, config, seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  EXPECT_EQ(sweep.schedules, seeds);
}

TEST(ScheduleTest, V1PctSweep) {
  ScheduleConfig config;
  config.mode = ScheduleConfig::Mode::kPct;
  config.threads = 4;
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakeV1, config, seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
}

TEST(ScheduleTest, V2PctSweep) {
  ScheduleConfig config;
  config.mode = ScheduleConfig::Mode::kPct;
  config.threads = 4;
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakeV2, config, seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
}

// The deliberately broken variant (publish-after-unlock, a lost-update
// window) must be caught within the smoke budget — this is what keeps the
// whole harness honest.  Wider sleeps at the yield points blow the window
// open; more ops per thread give every key a later read to contradict.
ScheduleConfig BrokenHuntConfig() {
  ScheduleConfig config;
  config.ops_per_thread = 20;
  config.sleep_prob = 0.30;
  config.yield_prob = 0.30;
  return config;
}

std::unique_ptr<core::KeyValueIndex> MakeBrokenV2() {
  auto options = SmallOptions();
  options.test_publish_after_unlock = true;
  return std::make_unique<core::EllisHashTableV2>(options);
}

TEST(ScheduleTest, BrokenVariantIsCaught) {
  const SweepOutcome sweep = RunSweep(MakeBrokenV2, BrokenHuntConfig(), 3000);
  ASSERT_GE(sweep.failures, 1u)
      << "lost-update variant survived " << sweep.schedules << " schedules";
  // The report is actionable: it names the seed and shows the window.
  EXPECT_NE(sweep.first_failure.report.find("seed"), std::string::npos);
  EXPECT_FALSE(sweep.first_failure.report.empty());
}

// The snapshot-directory analogue: a split that publishes the new
// directory snapshot *before* rewriting the old bucket page (and defers
// that rewrite past both unlocks) lets a racing updater read the stale
// pre-split page through the fresh directory and lose its update to the
// straggler write.  The new kSnapshotLoad/kSnapshotPublish yield points are
// exactly where the window opens, so the checker must catch this within
// the same smoke budget as the lock-order variant above.
std::unique_ptr<core::KeyValueIndex> MakeBrokenSnapshotV2() {
  auto options = SmallOptions();
  options.test_publish_dir_before_pages = true;
  return std::make_unique<core::EllisHashTableV2>(options);
}

// Unlike the publish-after-unlock bug (any two same-bucket inserts race),
// this window only opens on a *split*, so the hunt needs enough distinct
// keys to overflow capacity-4 buckets repeatedly, and longer sleeps to let
// a racing updater finish inside the straggler-write window.
ScheduleConfig BrokenSnapshotHuntConfig() {
  ScheduleConfig config = BrokenHuntConfig();
  config.ops_per_thread = 30;
  config.key_space = 16;
  config.max_sleep_us = 100;
  return config;
}

TEST(ScheduleTest, BrokenSnapshotPublishOrderIsCaught) {
  const SweepOutcome sweep =
      RunSweep(MakeBrokenSnapshotV2, BrokenSnapshotHuntConfig(), 3000);
  ASSERT_GE(sweep.failures, 1u)
      << "publish-dir-before-pages variant survived " << sweep.schedules
      << " schedules";
  EXPECT_NE(sweep.first_failure.report.find("seed"), std::string::npos);
}

// The correct tables must survive the exact configuration that catches the
// broken variant — otherwise the catch above proves nothing about the
// snapshot protocol, only about the config being hot enough to trip.
TEST(ScheduleTest, V1SurvivesTheSplitHeavyHunt) {
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakeV1, BrokenSnapshotHuntConfig(),
                                      seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
}

TEST(ScheduleTest, V2SurvivesTheSplitHeavyHunt) {
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep = RunSweep(MakeV2, BrokenSnapshotHuntConfig(),
                                      seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
}

// The paged table under the same split-heavy heat: every split's page
// rewrite now races evictions and reloads of the very pages being rewritten
// (the §11 claim that eviction is invisible to §4e validation, checked by
// the linearizability oracle rather than a frozen-reader witness).
TEST(ScheduleTest, PagedV2SurvivesTheSplitHeavyHunt) {
  const uint64_t seeds = SweepBudgetFromEnv(kSmokeSeeds);
  const SweepOutcome sweep =
      RunSweep(MakePagedV2, BrokenSnapshotHuntConfig(), seeds);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
}

// The seqlock analogue (DESIGN.md §4e): a page store that performs both
// sequence bumps *after* the data copy leaves the word even while the copy
// is in flight, so a lock-free find racing a split's page rewrite can
// validate a half-written image — and return results (a present key
// missing, a key paired with another record's value) that fit no point in
// time.  The kSeqReadBegin/kSeqValidate/kPageCopy yield points are exactly
// where the window opens and closes.
std::unique_ptr<core::KeyValueIndex> MakeBrokenSeqV2() {
  auto options = SmallOptions();
  options.test_seq_bump_after_write = true;
  return std::make_unique<core::EllisHashTableV2>(options);
}

// The torn image must contradict *committed* state, which takes a page
// rewrite big enough to straddle the reader's copy — splits provide that;
// reuse the split-heavy hunt (small key space, capacity-4 buckets, long
// sleeps to park a writer mid-copy while a reader validates).
TEST(ScheduleTest, BrokenSeqBumpOrderIsCaught) {
  const SweepOutcome sweep =
      RunSweep(MakeBrokenSeqV2, BrokenSnapshotHuntConfig(), 3000);
  ASSERT_GE(sweep.failures, 1u)
      << "seq-bump-after-write variant survived " << sweep.schedules
      << " schedules";
  EXPECT_NE(sweep.first_failure.report.find("seed"), std::string::npos);
}

// And the correct tables must survive the identical configuration — the
// catch above indicts the broken bump order, not the hunt's heat.  (The
// V1/V2 SurvivesTheSplitHeavyHunt tests above are that control: same
// config, correct protocol, zero failures.)

TEST(ScheduleTest, FailingSeedReplays) {
  const SweepOutcome sweep = RunSweep(MakeBrokenV2, BrokenHuntConfig(), 3000);
  ASSERT_GE(sweep.failures, 1u);
  const uint64_t seed = sweep.first_failure.seed;
  // The perturbation schedule is a pure function of the seed; the OS still
  // schedules threads, so allow a few attempts for the race to land again.
  bool reproduced = false;
  for (int attempt = 0; attempt < 5 && !reproduced; ++attempt) {
    ScheduleConfig config = BrokenHuntConfig();
    config.seed = seed;
    auto table = MakeBrokenV2();
    reproduced = !RunOneSchedule(table.get(), config).ok;
  }
  EXPECT_TRUE(reproduced) << "seed " << seed << " did not replay in 5 tries";
}

TEST(SweepBudgetTest, EnvKnobOverridesFallback) {
  ::unsetenv("EXHASH_VERIFY_SWEEP");
  EXPECT_EQ(SweepBudgetFromEnv(77), 77u);
  ::setenv("EXHASH_VERIFY_SWEEP", "123", 1);
  EXPECT_EQ(SweepBudgetFromEnv(77), 123u);
  ::setenv("EXHASH_VERIFY_SWEEP", "0", 1);
  EXPECT_EQ(SweepBudgetFromEnv(77), 77u);
  ::setenv("EXHASH_VERIFY_SWEEP", "junk", 1);
  EXPECT_EQ(SweepBudgetFromEnv(77), 77u);
  ::unsetenv("EXHASH_VERIFY_SWEEP");
}

}  // namespace
}  // namespace exhash::verify
