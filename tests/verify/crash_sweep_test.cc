// Crash-point sweep (DESIGN.md §9): kill a WAL-enabled table at every
// durability-relevant yield point of a seeded restructure-heavy schedule,
// recover from the frozen bytes, and require validator-cleanliness plus
// linearizability of the joined pre/post-crash history.
//
// Smoke tier sweeps a strided sample of kill points for a few seeds per
// variant; EXHASH_CRASH_SWEEP=<n> raises the per-seed kill budget for the
// full campaign (the acceptance run uses >= 8 seeds at every point — see
// tests/README.md for the replay recipe).  A failing run prints a
// replayable (seed, kill_index) pair.

#include "verify/crash.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>

namespace exhash::verify {
namespace {

// One harness sanity check before any sweeping: an uncrashed census run
// of the default schedule emits a healthy number of kill points (splits,
// merges, commits, fsyncs all fire).
TEST(CrashHarnessTest, CensusFindsKillPoints) {
  CrashConfig config;
  const uint64_t points = CountCrashPoints(config);
  EXPECT_GT(points, 50u) << "schedule too quiet to be worth sweeping";
}

// A single mid-schedule kill, end to end: replayable shape of the sweep's
// inner loop, with the outcome's bookkeeping visible for debugging.
TEST(CrashHarnessTest, SingleKillRecoversAndLinearizes) {
  CrashConfig config;
  const CrashOutcome out = RunOneCrashSchedule(config, /*kill_index=*/25);
  EXPECT_TRUE(out.ok) << out.report;
  EXPECT_TRUE(out.recovery.ok()) << out.recovery.error;
  EXPECT_GT(out.post_ops, 0u);
}

// The quiescent cut (kill_index past every emission): all workers done,
// every acked op must be durable under flush-every-commit.
TEST(CrashHarnessTest, QuiescentCutLosesNothing) {
  CrashConfig config;
  const CrashOutcome out = RunOneCrashSchedule(config, UINT64_MAX);
  EXPECT_TRUE(out.ok) << out.report;
  EXPECT_EQ(out.killed_at, "quiescent");
  EXPECT_EQ(out.pending_ops, 0u);
}

// Campaign scaling: the smoke tier strides 12 kill points over 3 (V2) /
// 2 (V1) seeds; EXHASH_CRASH_SWEEP >= 1000 switches to the acceptance
// campaign — 8 seeds per variant, killing at *every* emitted point.
TEST(CrashSweepTest, V2SweepIsClean) {
  CrashConfig config;
  config.variant = 2;
  const uint64_t kills = CrashSweepBudgetFromEnv(/*fallback=*/12);
  const uint64_t seeds = kills >= 1000 ? 8 : 3;
  const CrashSweepOutcome sweep =
      RunCrashSweep(config, seeds, /*max_kills_per_seed=*/kills);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  EXPECT_GT(sweep.runs, 0u);
  std::printf("V2 sweep: %" PRIu64 " crash/recover/check runs over %" PRIu64
              " seeds\n",
              sweep.runs, seeds);
}

TEST(CrashSweepTest, V1SweepIsClean) {
  CrashConfig config;
  config.variant = 1;
  config.seed = 100;
  const uint64_t kills = CrashSweepBudgetFromEnv(/*fallback=*/12);
  const uint64_t seeds = kills >= 1000 ? 8 : 2;
  const CrashSweepOutcome sweep =
      RunCrashSweep(config, seeds, /*max_kills_per_seed=*/kills);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  std::printf("V1 sweep: %" PRIu64 " crash/recover/check runs over %" PRIu64
              " seeds\n",
              sweep.runs, seeds);
}

// The batching flush policies must be crash-safe at every kill point
// too: a committer is only acked once its batch's fsync returned, so the
// joined-history obligations are identical to per-commit — including
// kills landing on the flusher thread's own wal-fsync emissions.
TEST(CrashSweepTest, GroupCommitSweepIsClean) {
  CrashConfig config;
  config.flush_policy = storage::WalFlushPolicy::kGroup;
  config.seed = 300;
  const uint64_t kills = CrashSweepBudgetFromEnv(/*fallback=*/12);
  const uint64_t seeds = kills >= 1000 ? 8 : 2;
  const CrashSweepOutcome sweep =
      RunCrashSweep(config, seeds, /*max_kills_per_seed=*/kills);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  std::printf("group-commit sweep: %" PRIu64 " runs over %" PRIu64
              " seeds\n",
              sweep.runs, seeds);
}

TEST(CrashSweepTest, PipelinedSweepIsClean) {
  CrashConfig config;
  config.flush_policy = storage::WalFlushPolicy::kPipelined;
  config.seed = 400;
  const uint64_t kills = CrashSweepBudgetFromEnv(/*fallback=*/12);
  const uint64_t seeds = kills >= 1000 ? 8 : 2;
  const CrashSweepOutcome sweep =
      RunCrashSweep(config, seeds, /*max_kills_per_seed=*/kills);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  std::printf("pipelined sweep: %" PRIu64 " runs over %" PRIu64 " seeds\n",
              sweep.runs, seeds);
}

// Paged tier (DESIGN.md §11): with the page budget far below the bucket
// population the schedule's kills also land inside the pool's
// kPoolEvict/kPoolReload windows — between a victim's unmap and its
// writeback, and between a reload and its publish.  The steal => flush
// rule makes those cuts indistinguishable from any other: a spilled
// frame's producing records were durable before the spill, and recovery
// reopens with the same budget.
TEST(CrashSweepTest, PagedSweepIsClean) {
  CrashConfig config;
  config.page_budget = 6;
  config.seed = 500;
  const uint64_t kills = CrashSweepBudgetFromEnv(/*fallback=*/12);
  const uint64_t seeds = kills >= 1000 ? 8 : 2;
  const CrashSweepOutcome sweep =
      RunCrashSweep(config, seeds, /*max_kills_per_seed=*/kills);
  EXPECT_EQ(sweep.failures, 0u) << sweep.first_failure.report;
  std::printf("paged sweep: %" PRIu64 " runs over %" PRIu64 " seeds\n",
              sweep.runs, seeds);
}

// The teeth check: a deliberately broken commit protocol — the commit
// record flushed *before* its page images — leaves a window where a
// crash yields a committed transaction recovery cannot replay, i.e. an
// acked operation silently forgotten.  The same sweep that passes above
// must catch it (via the joined-history linearizability check or the
// validator); if it cannot, the sweep proves nothing.
TEST(CrashSweepTest, BrokenCommitOrderingIsCaught) {
  CrashConfig config;
  config.test_commit_before_images = true;
  const CrashSweepOutcome sweep = RunCrashSweep(config, /*num_seeds=*/4,
                                                /*max_kills_per_seed=*/64);
  EXPECT_GT(sweep.failures, 0u)
      << "sweep failed to catch the broken commit ordering in "
      << sweep.runs << " runs";
}

// Delta-record teeth: with the delta-before-base discipline broken, the
// formatting writes themselves land as zero-base deltas, so essentially
// every cut leaves a committed delta recovery has no base to apply —
// the sweep must observe the kCorrupt refusal as a failure, proving it
// would catch a real delta-discipline regression.
TEST(CrashSweepTest, BrokenDeltaBeforeBaseIsCaught) {
  CrashConfig config;
  config.test_delta_before_base = true;
  const CrashSweepOutcome sweep = RunCrashSweep(config, /*num_seeds=*/2,
                                                /*max_kills_per_seed=*/16);
  EXPECT_GT(sweep.failures, 0u)
      << "sweep failed to catch the broken delta discipline in "
      << sweep.runs << " runs";
}

}  // namespace
}  // namespace exhash::verify
