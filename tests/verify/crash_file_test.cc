// FileMedia real-kill crash tier (DESIGN.md §9): unlike the simulated
// Freeze() sweep, this tier forks a child process that runs the
// restructure-heavy workload against a *file-backed* WAL table and
// SIGKILLs itself at the k-th durability-relevant hook emission.  The
// parent then recovers from the actual on-disk bytes — whatever the
// kernel kept of a process that died mid-write — validates the structure,
// probes every key, runs a post workload, and checks linearizability of
// the joined history.
//
// The child streams one fixed-size record per invocation/response over a
// pipe (each write() is <= PIPE_BUF, hence atomic; pipe order is a valid
// real-time order of the write syscalls, and the recorded interval
// contains the true op interval, so checking against it is sound).  Ops
// with an invocation but no response were in flight at the kill and join
// as crash-pending.  A kill index past the schedule's emissions degrades
// to a clean child exit — the quiescent tier, where every acked op must
// survive.
//
// What this tier adds over the Freeze() sweep: real process death (no
// cooperative unwinding, destructors never run), real file descriptors
// (partial page/log writes cut by the kernel, not by a seeded prefix
// model), and the flusher thread dying mid-batch for the group policies.
// What it cannot catch: a missing fsync — completed write()s survive a
// process kill regardless of flushing; only the power-cut model (Freeze)
// has teeth there.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ellis_v2.h"
#include "core/table_base.h"
#include "storage/bucket.h"
#include "storage/page_store.h"
#include "storage/wal.h"
#include "util/random.h"
#include "util/test_hooks.h"
#include "verify/history.h"
#include "verify/linearize.h"

namespace exhash::verify {
namespace {

constexpr int kThreads = 3;
constexpr int kOpsPerThread = 32;
constexpr uint64_t kKeySpace = 8;
constexpr size_t kPageSize = 112;

// One event on the pipe.  32 bytes, far below PIPE_BUF, so concurrent
// child threads interleave whole records, never fragments.
struct WireOp {
  uint8_t kind;       // OpKind, or 0xFF for the census sentinel
  uint8_t is_return;  // 0 = invocation, 1 = response
  uint8_t thread;
  uint8_t result;
  uint32_t seq;  // per-thread op index pairing invocation with response
  uint64_t key;  // sentinel: total kill-point emissions
  uint64_t arg;
  uint64_t out;
};
static_assert(sizeof(WireOp) == 32, "one atomic pipe write per event");

constexpr uint8_t kCensusSentinel = 0xFF;

// Mirrors the Freeze() sweep's kill-point set (verify/crash.cc).
bool IsKillPoint(util::HookPoint p) {
  switch (p) {
    case util::HookPoint::kWalAppend:
    case util::HookPoint::kWalFsync:
    case util::HookPoint::kCommitPoint:
    case util::HookPoint::kPageCopy:
    case util::HookPoint::kSnapshotPublish:
      return true;
    default:
      return false;
  }
}

struct KillTrigger {
  std::atomic<uint64_t> points{0};
  uint64_t kill_index = 0;
};

void KillHook(void* ctx, util::HookPoint point, const void*) {
  if (!IsKillPoint(point)) return;
  auto* trigger = static_cast<KillTrigger*>(ctx);
  const uint64_t n =
      trigger->points.fetch_add(1, std::memory_order_relaxed);
  if (n == trigger->kill_index) {
    // Real death, no unwinding: the kernel keeps whatever bytes the
    // store's completed write()s produced, nothing else.
    kill(getpid(), SIGKILL);
  }
}

void WriteRecord(int fd, const WireOp& op) {
  // Atomic (<= PIPE_BUF); a short count cannot happen on a pipe.
  (void)!write(fd, &op, sizeof(op));
}

core::TableOptions FileTableOptions(const std::string& path,
                                    storage::WalFlushPolicy policy) {
  core::TableOptions o;
  o.page_size = kPageSize;
  o.initial_depth = 1;
  o.wal = true;
  o.backing_file = path;
  o.wal_flush_policy = policy;
  return o;
}

// Child body: build the file-backed table, install the kill hook (after
// construction, mirroring the Freeze() sweep: the formatting transaction
// is not a kill target), run the workload streaming events to the pipe,
// then report the census and exit cleanly if the kill never fired.
// Never returns into gtest; plain code only.
void ChildMain(const std::string& path, storage::WalFlushPolicy policy,
               uint64_t kill_index, uint64_t seed, int pipe_fd) {
  core::EllisHashTableV2 table(FileTableOptions(path, policy));
  KillTrigger trigger;
  trigger.kill_index = kill_index;
  util::TestHooks::Install(&KillHook, &trigger);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&table, seed, t, pipe_fd] {
      util::Rng rng(seed * 1000003 + uint64_t(t) * 7919 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const double roll = rng.NextDouble();
        const uint64_t key = rng.Uniform(kKeySpace);
        const uint64_t value = (uint64_t(t + 1) << 32) | uint64_t(i + 1);
        WireOp op = {};
        op.thread = uint8_t(t);
        op.seq = uint32_t(i);
        op.key = key;
        // Same restructure-heavy mix as the Freeze() sweep: insert-lean
        // first half (splits/doublings), remove-lean second half.
        const double ins = i < kOpsPerThread / 2 ? 0.70 : 0.20;
        bool result = false;
        if (roll < ins) {
          op.kind = uint8_t(OpKind::kInsert);
          op.arg = value;
          WriteRecord(pipe_fd, op);
          result = table.Insert(key, value);
        } else if (roll < ins + 0.15) {
          op.kind = uint8_t(OpKind::kFind);
          WriteRecord(pipe_fd, op);
          uint64_t found = 0;
          result = table.Find(key, &found);
          op.out = found;
        } else {
          op.kind = uint8_t(OpKind::kRemove);
          WriteRecord(pipe_fd, op);
          result = table.Remove(key);
        }
        op.is_return = 1;
        op.result = result ? 1 : 0;
        WriteRecord(pipe_fd, op);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  util::TestHooks::Clear();
  WireOp sentinel = {};
  sentinel.kind = kCensusSentinel;
  sentinel.key = trigger.points.load(std::memory_order_relaxed);
  WriteRecord(pipe_fd, sentinel);
}

struct ChildRun {
  bool killed = false;    // died by SIGKILL (vs clean exit)
  uint64_t census = 0;    // sentinel value; only on clean exits
  std::vector<OpRecord> history;  // pipe-order ticks; pending ops at cut
  uint64_t cut = 0;       // tick of the death/exit
  uint64_t pending = 0;
};

// Forks the workload child and reassembles its event stream.
ChildRun RunChild(const std::string& path, storage::WalFlushPolicy policy,
                  uint64_t kill_index, uint64_t seed) {
  ChildRun run;
  int fds[2];
  if (pipe(fds) != 0) {
    ADD_FAILURE() << "pipe() failed";
    return run;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork() failed";
    return run;
  }
  if (pid == 0) {
    close(fds[0]);
    ChildMain(path, policy, kill_index, seed, fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::vector<std::byte> raw;
  std::byte buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    raw.insert(raw.end(), buf, buf + n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    run.killed = true;
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
  } else {
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child exited with " << WEXITSTATUS(status);
  }

  // Rebuild the history from the stream: record index = tick.  A child
  // thread runs one op at a time (invoke write, op, response write), so
  // each thread has at most one op open; the seq field double-checks the
  // pairing.
  const size_t records = raw.size() / sizeof(WireOp);
  OpRecord open[kThreads];
  uint32_t open_seq[kThreads];
  bool has_open[kThreads] = {};
  for (size_t r = 0; r < records; ++r) {
    WireOp op;
    std::memcpy(&op, raw.data() + r * sizeof(WireOp), sizeof(WireOp));
    if (op.kind == kCensusSentinel) {
      run.census = op.key;
      continue;
    }
    if (op.thread >= kThreads) {
      ADD_FAILURE() << "garbled pipe record " << r;
      continue;
    }
    if (op.is_return == 0) {
      EXPECT_FALSE(has_open[op.thread]) << "two ops in flight on one thread";
      OpRecord rec;
      rec.kind = OpKind(op.kind);
      rec.thread = op.thread;
      rec.key = op.key;
      rec.arg = op.arg;
      rec.invoke = uint64_t(r);
      open[op.thread] = rec;
      open_seq[op.thread] = op.seq;
      has_open[op.thread] = true;
      continue;
    }
    if (!has_open[op.thread] || open_seq[op.thread] != op.seq) {
      ADD_FAILURE() << "unmatched response at pipe record " << r;
      continue;
    }
    OpRecord rec = open[op.thread];
    rec.ret = uint64_t(r);
    rec.result = op.result != 0;
    rec.out = op.out;
    run.history.push_back(rec);
    has_open[op.thread] = false;
  }
  run.cut = uint64_t(records);
  for (int t = 0; t < kThreads; ++t) {
    if (!has_open[t]) continue;
    OpRecord pending = open[t];
    pending.crash_pending = true;
    pending.ret = run.cut;
    pending.result = false;
    pending.out = 0;
    run.history.push_back(pending);
    ++run.pending;
  }
  return run;
}

void RemoveFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// Recover the on-disk bytes, validate, probe every key, run a post
// workload, and check the joined history — the parent half of the tier.
void RecoverAndCheck(const std::string& path, storage::WalFlushPolicy policy,
                     const ChildRun& run, const std::string& label) {
  // Dry-run the storage recovery on a scratch store first: a refusal is
  // an actionable failure message, not an aborting table constructor.
  {
    storage::PageStore::Options so;
    so.page_size = kPageSize;
    so.wal = true;
    so.backing_file = path;
    so.recover = true;
    storage::PageStore scratch(so);
    const storage::RecoveryReport report = scratch.Recover();
    ASSERT_TRUE(report.ok())
        << label << ": storage recovery refused: " << report.error;
  }
  core::TableOptions o = FileTableOptions(path, policy);
  o.recover = true;
  core::EllisHashTableV2 table(o);
  ASSERT_TRUE(table.recovery_report().ok())
      << label << ": " << table.recovery_report().error;
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << label << ": " << error;

  RecordingIndex post(&table);
  for (uint64_t key = 0; key < kKeySpace; ++key) {
    post.Find(key, nullptr);  // what did recovery serve?
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&post, t] {
      util::Rng rng(0xAF7E2u + uint64_t(t));
      for (int i = 0; i < 16; ++i) {
        const double roll = rng.NextDouble();
        const uint64_t key = rng.Uniform(kKeySpace);
        if (roll < 0.4) {
          post.Insert(key, (uint64_t(t + 91) << 32) | uint64_t(i + 1));
        } else if (roll < 0.7) {
          post.Find(key, nullptr);
        } else {
          post.Remove(key);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_TRUE(table.Validate(&error)) << label << ": " << error;

  std::vector<OpRecord> joined = run.history;
  const uint64_t shift = run.cut + 1;
  for (OpRecord op : post.history().Merge()) {
    op.invoke += shift;
    op.ret += shift;
    joined.push_back(op);
  }
  const CheckResult check = CheckHistory(joined);
  EXPECT_EQ(check.verdict, Verdict::kLinearizable)
      << label << " (pre=" << run.history.size() - run.pending
      << " pending=" << run.pending << " post=" << post.history().num_ops()
      << "):\n"
      << (check.verdict == Verdict::kNonLinearizable ? check.cex.Format()
                                                     : "budget exceeded");
}

class CrashFileTest
    : public ::testing::TestWithParam<storage::WalFlushPolicy> {};

TEST_P(CrashFileTest, RealKillSweepRecoversAndLinearizes) {
  const std::string path = ::testing::TempDir() + "/crash_file_" +
                           storage::WalFlushPolicyName(GetParam()) + ".db";
  // Census pass: the child survives, reports its emission count, and the
  // quiescent recovery (clean exit, every op acked) must be perfect.
  RemoveFiles(path);
  const ChildRun census = RunChild(path, GetParam(), UINT64_MAX, /*seed=*/1);
  ASSERT_FALSE(census.killed);
  ASSERT_GT(census.census, 50u) << "schedule too quiet to be worth killing";
  EXPECT_EQ(census.pending, 0u);
  RecoverAndCheck(path, GetParam(), census, "quiescent");

  // Real kills strided across the schedule.  Emission counts vary run to
  // run (real interleaving), so a kill index the run never reaches just
  // degrades to another clean exit — the sweep stays total either way.
  const uint64_t kills[] = {1, census.census / 4, census.census / 2,
                            (3 * census.census) / 4};
  int killed_runs = 0;
  for (const uint64_t k : kills) {
    RemoveFiles(path);
    const ChildRun run = RunChild(path, GetParam(), k, /*seed=*/2 + k);
    killed_runs += run.killed ? 1 : 0;
    RecoverAndCheck(path, GetParam(), run,
                    "kill@" + std::to_string(k) +
                        (run.killed ? "" : " (survived)"));
  }
  // Teeth: the tier is vacuous if every child outran its kill index.
  EXPECT_GT(killed_runs, 0) << "no child was actually killed";
  RemoveFiles(path);
}

INSTANTIATE_TEST_SUITE_P(
    FlushPolicies, CrashFileTest,
    ::testing::Values(storage::WalFlushPolicy::kPerCommit,
                      storage::WalFlushPolicy::kGroup),
    [](const auto& info) {
      return std::string(storage::WalFlushPolicyName(info.param)) == "group"
                 ? "group"
                 : "percommit";
    });

}  // namespace
}  // namespace exhash::verify
