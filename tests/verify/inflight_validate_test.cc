// ValidateMode::kInFlight: the instant invariants must hold at every
// injected yield point — including the legal intermediate states a paused
// restructure exposes (bucket reachable only via next) — while still
// rejecting genuine corruption.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/directory.h"
#include "core/ellis_v1.h"
#include "core/validate.h"
#include "storage/bucket.h"
#include "storage/page_store.h"
#include "util/pseudokey.h"
#include "util/test_hooks.h"

namespace exhash::core {
namespace {

constexpr size_t kPageSize = 112;  // capacity 4

util::IdentityHasher* identity() {
  static util::IdentityHasher h;
  return &h;
}

// Blocks the emitting thread at the nth emission of `target` until
// Release(); other hook points pass through.
struct PauseController {
  util::HookPoint target;
  int fire_at;
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  bool paused = false;
  bool released = false;

  static void Hook(void* ctx, util::HookPoint point, const void*) {
    static_cast<PauseController*>(ctx)->At(point);
  }
  void At(util::HookPoint point) {
    if (point != target) return;
    if (count.fetch_add(1) + 1 != fire_at) return;
    std::unique_lock<std::mutex> lock(mu);
    paused = true;
    cv.notify_all();
    cv.wait(lock, [&] { return released; });
  }
  void WaitPaused() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return paused; });
  }
  void Release() {
    std::unique_lock<std::mutex> lock(mu);
    released = true;
    cv.notify_all();
  }
};

// Pause a real V1 insert between the split's page writes and the directory
// update — the new bucket exists but is reachable only via its sibling's
// next link (the §2.3 intermediate every reader must tolerate).
TEST(InFlightValidateTest, AcceptsRealTablePausedMidSplit) {
  TableOptions options;
  options.page_size = kPageSize;
  options.initial_depth = 1;
  options.max_depth = 8;
  options.hasher = identity();
  EllisHashTableV1 table(options);

  // Fill bucket "0" to capacity (identity hasher: low bit selects).
  for (uint64_t k : {0u, 2u, 4u, 6u}) ASSERT_TRUE(table.Insert(k, k));

  // The split path's first unlock is the bucket lock, released after both
  // halves are written but before dir_.UpdateEntries.
  PauseController pause{util::HookPoint::kPostUnlock, 1};
  util::TestHooks::Install(&PauseController::Hook, &pause);
  std::thread inserter([&] { EXPECT_TRUE(table.Insert(8, 8)); });
  pause.WaitPaused();

  // The split placed the 5th record before the pause point.
  std::string error;
  EXPECT_TRUE(table.ValidateInFlightState(5, &error))
      << "legal mid-split state rejected: " << error;
  // The quiescent checker rightly refuses this instant (stale directory
  // entries, lagging depthcount and size) — that is why kInFlight exists.
  EXPECT_FALSE(table.Validate(&error));

  pause.Release();
  inserter.join();
  util::TestHooks::Clear();

  EXPECT_TRUE(table.Validate(&error)) << error;
  uint64_t v = 0;
  EXPECT_TRUE(table.Find(8, &v));
  EXPECT_EQ(v, 8u);
}

// Hand-built states, same idiom as tests/core/validate_test.cc: a depth-1
// two-bucket file we can reshape into intermediates or corruption.
class InFlightStructTest : public ::testing::Test {
 protected:
  InFlightStructTest()
      : store_({.page_size = kPageSize}),
        dir_(1, 8),
        capacity_(storage::Bucket::CapacityFor(kPageSize)) {
    page0_ = store_.Alloc();
    page1_ = store_.Alloc();
    storage::Bucket b0(capacity_);
    b0.localdepth = 1;
    b0.commonbits = 0;
    b0.next = page1_;
    storage::Bucket b1(capacity_);
    b1.localdepth = 1;
    b1.commonbits = 1;
    b1.prev = page0_;
    Put(page0_, b0);
    Put(page1_, b1);
    dir_.SetEntry(0, page0_);
    dir_.SetEntry(1, page1_);
    dir_.set_depthcount(2);
  }

  void Put(storage::PageId page, const storage::Bucket& b) {
    std::vector<std::byte> buf(kPageSize);
    b.SerializeTo(buf.data(), kPageSize);
    store_.Write(page, buf.data());
  }

  storage::Bucket Get(storage::PageId page) {
    std::vector<std::byte> buf(kPageSize);
    store_.Read(page, buf.data());
    storage::Bucket b(capacity_);
    EXPECT_TRUE(storage::Bucket::DeserializeFrom(buf.data(), kPageSize, &b));
    return b;
  }

  bool InFlightValid(uint64_t expected_size, std::string* error) {
    return ValidateStructure(dir_, store_, hasher_, capacity_, kPageSize,
                             expected_size, error, ValidateMode::kInFlight);
  }

  util::IdentityHasher hasher_;
  storage::PageStore store_;
  Directory dir_;
  int capacity_;
  storage::PageId page0_;
  storage::PageId page1_;
};

TEST_F(InFlightStructTest, CleanStatePasses) {
  std::string error;
  EXPECT_TRUE(InFlightValid(0, &error)) << error;
}

// Mid-split snapshot: bucket "00" split into "00"/"10", both pages written
// and chained, but the doubled directory's new entries still aim at the old
// page.  Instant invariants hold; the quiescent set does not.
TEST_F(InFlightStructTest, AcceptsBucketReachableOnlyViaNext) {
  const storage::PageId page2 = store_.Alloc();
  storage::Bucket b0 = Get(page0_);
  b0.localdepth = 2;
  b0.commonbits = 0b00;
  b0.next = page2;
  Put(page0_, b0);
  storage::Bucket b2(capacity_);
  b2.localdepth = 2;
  b2.commonbits = 0b10;
  b2.next = page1_;
  b2.prev = page0_;
  Put(page2, b2);

  ASSERT_TRUE(dir_.Double());
  // Doubling aliases entries 2,3 onto 0,1: entry 2 still points at page0,
  // the "wrong bucket" a stale reader recovers from via next.
  ASSERT_EQ(dir_.Entry(2), page0_);

  std::string error;
  EXPECT_TRUE(InFlightValid(0, &error)) << error;
  EXPECT_FALSE(ValidateStructure(dir_, store_, hasher_, capacity_, kPageSize,
                                 0, &error, ValidateMode::kQuiescent));
}

// A V2 tombstone signpost: a merged bucket left in place, next aimed at the
// survivor, with a stale directory entry still addressing it.
TEST_F(InFlightStructTest, AcceptsTombstoneSignpost) {
  const storage::PageId page2 = store_.Alloc();
  storage::Bucket tomb(capacity_);
  tomb.localdepth = 1;
  tomb.commonbits = 1;
  tomb.deleted = true;
  tomb.next = page1_;
  Put(page2, tomb);
  dir_.SetEntry(1, page2);

  std::string error;
  EXPECT_TRUE(InFlightValid(0, &error)) << error;
}

TEST_F(InFlightStructTest, RejectsDanglingRecoveryWalk) {
  const storage::PageId page2 = store_.Alloc();
  storage::Bucket tomb(capacity_);
  tomb.localdepth = 1;
  tomb.commonbits = 1;
  tomb.deleted = true;
  tomb.next = storage::kInvalidPage;  // signpost to nowhere
  Put(page2, tomb);
  dir_.SetEntry(1, page2);

  std::string error;
  EXPECT_FALSE(InFlightValid(0, &error));
  EXPECT_NE(error.find("entry"), std::string::npos);
}

TEST_F(InFlightStructTest, RejectsChainCycle) {
  storage::Bucket b1 = Get(page1_);
  b1.next = page0_;  // back edge
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(InFlightValid(0, &error));
}

TEST_F(InFlightStructTest, RejectsDuplicateKeyAcrossChain) {
  storage::Bucket b0 = Get(page0_);
  b0.Add(2, 1);
  Put(page0_, b0);
  storage::Bucket b1 = Get(page1_);
  b1.Add(2, 2);  // same key; also misplaced — either diagnosis is fine
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(InFlightValid(2, &error));
}

TEST_F(InFlightStructTest, RejectsMisplacedRecord) {
  storage::Bucket b0 = Get(page0_);
  b0.Add(3, 9);  // low bit 1: belongs in bucket "1"
  Put(page0_, b0);
  std::string error;
  EXPECT_FALSE(InFlightValid(1, &error));
}

TEST_F(InFlightStructTest, RejectsWrongRecordCount) {
  std::string error;
  EXPECT_FALSE(InFlightValid(3, &error));
  EXPECT_NE(error.find("size"), std::string::npos);
}

}  // namespace
}  // namespace exhash::core
