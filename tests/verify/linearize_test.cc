// The checker itself must be trusted before anything it checks is — so:
// hand-built histories with known verdicts, both classic anomalies (stale
// read, lost update, value mismatch) and legal reorderings that a naive
// "respect wall-clock order" checker would wrongly reject.

#include "verify/linearize.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/sequential_hash.h"
#include "verify/history.h"

namespace exhash::verify {
namespace {

// [invoke, ret] intervals are given directly; the builder keeps them honest
// (ret > invoke).
OpRecord Op(OpKind kind, int thread, uint64_t key, uint64_t arg, bool result,
            uint64_t out, uint64_t invoke, uint64_t ret) {
  OpRecord op;
  op.kind = kind;
  op.thread = thread;
  op.key = key;
  op.arg = arg;
  op.result = result;
  op.out = out;
  op.invoke = invoke;
  op.ret = ret;
  EXPECT_LT(invoke, ret);
  return op;
}

OpRecord Find(int t, uint64_t key, bool found, uint64_t out, uint64_t inv,
              uint64_t ret) {
  return Op(OpKind::kFind, t, key, 0, found, out, inv, ret);
}
OpRecord Insert(int t, uint64_t key, uint64_t value, bool ok, uint64_t inv,
                uint64_t ret) {
  return Op(OpKind::kInsert, t, key, value, ok, 0, inv, ret);
}
OpRecord Remove(int t, uint64_t key, bool ok, uint64_t inv, uint64_t ret) {
  return Op(OpKind::kRemove, t, key, 0, ok, 0, inv, ret);
}

TEST(LinearizeTest, EmptyHistoryIsLinearizable) {
  const CheckResult r = CheckHistory({});
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

TEST(LinearizeTest, SequentialHistoryIsLinearizable) {
  const std::vector<OpRecord> h = {
      Insert(0, 5, 7, true, 0, 1),
      Find(0, 5, true, 7, 2, 3),
      Insert(0, 5, 9, false, 4, 5),  // duplicate insert fails
      Remove(0, 5, true, 6, 7),
      Find(0, 5, false, 0, 8, 9),
      Remove(0, 5, false, 10, 11),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

// A find that returns "absent" while overlapping the insert is fine: it
// linearizes before the insert even though it *returned* after the insert's
// invocation.
TEST(LinearizeTest, OverlappingOpsMayReorder) {
  const std::vector<OpRecord> h = {
      Insert(0, 5, 7, true, 0, 10),
      Find(1, 5, false, 0, 2, 4),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

// The same find *after* the insert returned is a stale read.
TEST(LinearizeTest, DetectsStaleRead) {
  const std::vector<OpRecord> h = {
      Insert(0, 5, 7, true, 0, 1),
      Find(1, 5, false, 0, 2, 4),
  };
  const CheckResult r = CheckHistory(h);
  ASSERT_EQ(r.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(r.cex.key, 5u);
  EXPECT_FALSE(r.cex.stuck.empty());
  // The formatted counterexample names the key and shows the window.
  const std::string text = r.cex.Format();
  EXPECT_NE(text.find("non-linearizable at key 5"), std::string::npos);
  EXPECT_NE(text.find("stuck window"), std::string::npos);
}

// Two inserts of the same key both claiming success: the second has no
// valid linearization point — exactly the lost-update shape the broken
// table variant produces.
TEST(LinearizeTest, DetectsLostUpdate) {
  const std::vector<OpRecord> h = {
      Insert(0, 5, 7, true, 0, 1),
      Insert(1, 5, 9, true, 2, 3),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kNonLinearizable);
}

TEST(LinearizeTest, DetectsWrongValue) {
  const std::vector<OpRecord> h = {
      Insert(0, 5, 7, true, 0, 1),
      Find(1, 5, true, 8, 2, 4),  // present, but a value nobody inserted
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kNonLinearizable);
}

TEST(LinearizeTest, DetectsRemoveOfAbsentClaimingSuccess) {
  const std::vector<OpRecord> h = {
      Remove(0, 5, true, 0, 1),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kNonLinearizable);
}

// Concurrent inserts where exactly one wins is the *correct* outcome.
TEST(LinearizeTest, ConcurrentInsertsOneWinnerIsLinearizable) {
  const std::vector<OpRecord> h = {
      Insert(0, 3, 1, true, 0, 10),
      Insert(1, 3, 2, false, 1, 9),
      Find(2, 3, true, 1, 11, 12),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

// Requires genuine search: the reads force a specific interleaving of the
// overlapping insert/remove pair that differs from invocation order.
TEST(LinearizeTest, SearchFindsNonObviousOrder) {
  const std::vector<OpRecord> h = {
      Insert(0, 1, 5, true, 0, 20),
      Remove(1, 1, true, 1, 19),
      Find(2, 1, true, 5, 2, 6),
      Find(2, 1, false, 0, 7, 18),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

// P-compositionality: the partitioned and monolithic searches must agree,
// on both verdicts, for multi-key histories.
TEST(LinearizeTest, PartitionedAndMonolithicAgree) {
  const std::vector<OpRecord> good = {
      Insert(0, 1, 10, true, 0, 5),
      Insert(1, 2, 20, true, 1, 4),
      Find(0, 2, false, 0, 6, 8),   // overlaps nothing; 2 present... reorder?
      Find(1, 1, true, 10, 7, 9),
  };
  // Find(2)->absent after Insert(2) returned: non-linearizable — in both
  // modes, and the failing key is identified when partitioning.
  CheckOptions part;
  CheckOptions mono;
  mono.partition_by_key = false;
  const CheckResult rp = CheckHistory(good, part);
  const CheckResult rm = CheckHistory(good, mono);
  EXPECT_EQ(rp.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(rm.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(rp.cex.key, 2u);

  const std::vector<OpRecord> fixed = {
      Insert(0, 1, 10, true, 0, 5),
      Insert(1, 2, 20, true, 1, 4),
      Find(0, 2, true, 20, 6, 8),
      Find(1, 1, true, 10, 7, 9),
  };
  EXPECT_EQ(CheckHistory(fixed, part).verdict, Verdict::kLinearizable);
  EXPECT_EQ(CheckHistory(fixed, mono).verdict, Verdict::kLinearizable);
}

TEST(LinearizeTest, BudgetExceededIsReported) {
  // Many mutually overlapping ops on one key: the search space is large,
  // and a one-state budget cannot resolve it.
  std::vector<OpRecord> h;
  for (int t = 0; t < 8; ++t) {
    h.push_back(Insert(t, 1, uint64_t(t), t == 0, 0, 100));
  }
  CheckOptions options;
  options.max_states = 1;
  const CheckResult r = CheckHistory(h, options);
  EXPECT_EQ(r.verdict, Verdict::kBudgetExceeded);
}

// --- Crash-pending semantics (DESIGN.md §9) ---
//
// An op in flight at a crash cut has no observed return value: the
// checker may linearize it (with the model-implied result) or drop it,
// but whichever it picks must explain every later observation.

OpRecord Pending(OpKind kind, int t, uint64_t key, uint64_t arg,
                 uint64_t inv, uint64_t cut) {
  OpRecord op = Op(kind, t, key, arg, /*result=*/false, /*out=*/0, inv, cut);
  op.crash_pending = true;
  return op;
}

TEST(LinearizeCrashTest, PendingInsertMayBeDropped) {
  // The insert's effect never surfaced: recovery forgot it.  Legal — it
  // was never acked.
  const std::vector<OpRecord> h = {
      Pending(OpKind::kInsert, 0, 5, 7, 0, 10),
      Find(1, 5, false, 0, 11, 12),
  };
  EXPECT_EQ(CheckHistory(h).verdict, Verdict::kLinearizable);
}

TEST(LinearizeCrashTest, PendingInsertMayHaveTakenEffect) {
  // The insert's effect *did* survive: equally legal.
  const std::vector<OpRecord> h = {
      Pending(OpKind::kInsert, 0, 5, 7, 0, 10),
      Find(1, 5, true, 7, 11, 12),
  };
  EXPECT_EQ(CheckHistory(h).verdict, Verdict::kLinearizable);
}

TEST(LinearizeCrashTest, PendingInsertCannotExplainForeignValue) {
  // Present with a value nobody — acked or pending — ever wrote.
  const std::vector<OpRecord> h = {
      Pending(OpKind::kInsert, 0, 5, 7, 0, 10),
      Find(1, 5, true, 9, 11, 12),
  };
  EXPECT_EQ(CheckHistory(h).verdict, Verdict::kNonLinearizable);
}

TEST(LinearizeCrashTest, AckedOpLostAcrossCrashIsCaught) {
  // The shape the broken commit protocol produces: an insert acked
  // before the cut (ret < cut), silently missing after recovery.
  const std::vector<OpRecord> h = {
      Insert(0, 5, 7, true, 0, 1),   // acked pre-crash
      Find(1, 5, false, 0, 11, 12),  // post-recovery: gone
  };
  EXPECT_EQ(CheckHistory(h).verdict, Verdict::kNonLinearizable);
}

TEST(LinearizeCrashTest, PendingOpCannotLinearizeAfterTheCut) {
  // Both post-crash finds returned after the cut, so the pending insert
  // must resolve — take effect or vanish — before either of them.
  // "false then true" would need the insert to land *between* them,
  // which is after the cut: impossible, and the checker must say so.
  const std::vector<OpRecord> h = {
      Pending(OpKind::kInsert, 0, 5, 7, 0, 10),
      Find(1, 5, false, 0, 11, 12),
      Find(1, 5, true, 7, 13, 14),
  };
  EXPECT_EQ(CheckHistory(h).verdict, Verdict::kNonLinearizable);
}

TEST(LinearizeCrashTest, PendingRemoveResolvesEitherWay) {
  const std::vector<OpRecord> base = {
      Insert(0, 5, 7, true, 0, 1),
      Pending(OpKind::kRemove, 0, 5, 0, 2, 10),
  };
  for (const bool survived : {false, true}) {
    std::vector<OpRecord> h = base;
    h.push_back(Find(1, 5, survived, survived ? 7u : 0u, 11, 12));
    EXPECT_EQ(CheckHistory(h).verdict, Verdict::kLinearizable)
        << "survived=" << survived;
  }
}

TEST(LinearizeCrashTest, AllPendingHistoryIsLinearizable) {
  // Every op in flight at the cut: dropping them all is always legal.
  const std::vector<OpRecord> h = {
      Pending(OpKind::kInsert, 0, 1, 5, 0, 10),
      Pending(OpKind::kRemove, 1, 1, 0, 1, 10),
      Pending(OpKind::kFind, 2, 1, 0, 2, 10),
  };
  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

TEST(LinearizeCrashTest, PendingFormatsInHistoryDump) {
  const OpRecord op = Pending(OpKind::kInsert, 0, 5, 7, 0, 10);
  const std::string text = op.ToString();
  EXPECT_NE(text.find("crashed"), std::string::npos);
}

// Recorder end-to-end: drive a real (sequential) table through the
// recording wrapper and check the merged history.
TEST(HistoryRecorderTest, RecordsAndPassesChecker) {
  core::TableOptions options;
  options.page_size = 112;
  options.initial_depth = 1;
  core::SequentialExtendibleHash table(options);
  RecordingIndex recorded(&table);

  EXPECT_TRUE(recorded.Insert(1, 100));
  EXPECT_FALSE(recorded.Insert(1, 200));
  uint64_t v = 0;
  EXPECT_TRUE(recorded.Find(1, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(recorded.Remove(1));
  EXPECT_FALSE(recorded.Find(1, nullptr));

  const std::vector<OpRecord> h = recorded.history().Merge();
  ASSERT_EQ(h.size(), 5u);
  // Single-threaded: invocation order is program order, intervals disjoint.
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_LT(h[i].invoke, h[i].ret);
    if (i > 0) EXPECT_LT(h[i - 1].ret, h[i].invoke);
  }
  EXPECT_EQ(h[0].kind, OpKind::kInsert);
  EXPECT_TRUE(h[0].result);
  EXPECT_EQ(h[2].out, 100u);
  EXPECT_EQ(recorded.Name(), "sequential+recorded");

  const CheckResult r = CheckHistory(h);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
}

}  // namespace
}  // namespace exhash::verify
