// End-to-end linearizability of the distributed layer under faults: tapped
// retrying clients record invocation/response intervals while the network
// drops, duplicates, and delays their traffic.  Whatever the retries and
// failovers do internally, the observable history must stay linearizable —
// an at-least-once duplicate that applied a mutation twice, or a failover
// that resurrected a stale reply, shows up here as a checker verdict.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "distributed/cluster.h"
#include "util/random.h"
#include "verify/history.h"
#include "verify/linearize.h"

namespace exhash::dist {
namespace {

using verify::CheckHistory;
using verify::History;
using verify::OpKind;
using verify::Verdict;

OpKind KindOf(OpType op) {
  switch (op) {
    case OpType::kFind:
      return OpKind::kFind;
    case OpType::kInsert:
      return OpKind::kInsert;
    case OpType::kDelete:
      return OpKind::kRemove;
  }
  return OpKind::kFind;
}

// Bridges a client's op tap into a History thread log.
void Tap(Cluster::Client* client, History::ThreadLog* log) {
  Cluster::Client::OpTap tap;
  tap.on_invoke = [log](OpType op, uint64_t key, uint64_t arg) {
    return log->Invoke(KindOf(op), key, arg);
  };
  tap.on_return = [log](size_t token, bool result, uint64_t out) {
    log->Return(token, result, out);
  };
  client->SetTap(std::move(tap));
}

class DistributedLinearizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributedLinearizeTest, FaultyClusterHistoryIsLinearizable) {
  const uint64_t seed = GetParam();

  Cluster::Options o;
  o.num_directory_managers = 3;
  o.num_bucket_managers = 2;
  o.page_size = 112;  // capacity 4
  o.initial_depth = 2;
  o.max_depth = 16;
  o.spill_per_8 = 2;
  o.net.delay_ns_max = 100'000;
  o.net.seed = seed;
  o.faults.request_drop = 0.10;
  o.faults.request_dup = 0.10;
  o.faults.reply_drop = 0.10;
  o.faults.reply_dup = 0.10;
  o.faults.interior_dup = 0.05;
  o.retry.enabled = true;
  Cluster cluster(o);

  // A *shared* small key space — unlike the chaos test's disjoint ranges —
  // so clients genuinely race on the same keys and the checker has real
  // overlap to resolve.
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 60;
  constexpr uint64_t kKeySpace = 8;

  History history;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = cluster.NewClient();
      History::ThreadLog* log = history.NewThread();
      Tap(client.get(), log);
      util::Rng rng(seed * 7919 + uint64_t(c));
      for (int i = 0; i < kOpsPerClient; ++i) {
        const uint64_t key = rng.Uniform(kKeySpace);
        const double roll = rng.NextDouble();
        if (roll < 0.40) {
          client->Insert(key, (uint64_t(c + 1) << 32) | uint64_t(i + 1));
        } else if (roll < 0.70) {
          client->Find(key, nullptr);
        } else {
          client->Remove(key);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Drain: fault-free reads of every key pin the final state into the
  // history (they must linearize after everything), and the survivor count
  // feeds quiescent validation.
  cluster.ClearFaults();
  ASSERT_TRUE(cluster.WaitQuiescent());
  auto reader = cluster.NewClient();
  History::ThreadLog* reader_log = history.NewThread();
  Tap(reader.get(), reader_log);
  uint64_t present = 0;
  for (uint64_t key = 0; key < kKeySpace; ++key) {
    if (reader->Find(key, nullptr)) ++present;
  }

  const auto ops = history.Merge();
  EXPECT_EQ(ops.size(), uint64_t(kClients) * kOpsPerClient + kKeySpace);
  const auto result = CheckHistory(ops);
  EXPECT_EQ(result.verdict, Verdict::kLinearizable)
      << "seed " << seed << ":\n"
      << result.cex.Format();

  std::string error;
  EXPECT_TRUE(cluster.ValidateQuiescent(present, &error)) << error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedLinearizeTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace exhash::dist
