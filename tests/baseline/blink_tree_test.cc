#include "baseline/blink_tree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/random.h"

namespace exhash::baseline {
namespace {

TEST(BlinkTreeTest, SplitsGrowHeight) {
  BlinkTree tree({.fanout = 4});
  EXPECT_EQ(tree.Height(), 1);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, k));
  EXPECT_GT(tree.Height(), 2);
  EXPECT_GT(tree.Stats().splits, 0u);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
}

TEST(BlinkTreeTest, SequentialAndReverseInserts) {
  for (const bool reverse : {false, true}) {
    BlinkTree tree({.fanout = 6});
    for (uint64_t i = 0; i < 500; ++i) {
      const uint64_t k = reverse ? 499 - i : i;
      ASSERT_TRUE(tree.Insert(k, k * 3));
    }
    std::string error;
    ASSERT_TRUE(tree.Validate(&error)) << error;
    for (uint64_t k = 0; k < 500; ++k) {
      uint64_t v = 0;
      ASSERT_TRUE(tree.Find(k, &v)) << k;
      ASSERT_EQ(v, k * 3);
    }
  }
}

TEST(BlinkTreeTest, RandomOrderInsertsAndRemoves) {
  BlinkTree tree({.fanout = 8});
  util::Rng rng(31);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) tree.Insert(k, k);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  for (size_t i = 0; i < keys.size(); i += 2) {
    tree.Remove(keys[i]);
  }
  ASSERT_TRUE(tree.Validate(&error)) << error;
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(tree.Find(keys[i], nullptr), i % 2 == 1) << i;
  }
}

TEST(BlinkTreeTest, ConcurrentDisjointInserts) {
  BlinkTree tree({.fanout = 8});
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(tree.Insert(uint64_t(t) * kPerThread + i, t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.Size(), kThreads * kPerThread);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  for (uint64_t k = 0; k < kThreads * kPerThread; ++k) {
    ASSERT_TRUE(tree.Find(k, nullptr)) << k;
  }
}

TEST(BlinkTreeTest, ReadersDuringInserts) {
  BlinkTree tree({.fanout = 8});
  // Pinned keys that writers never touch.
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k * 1000000 + 1, k);
  std::atomic<bool> stop{false};
  std::atomic<bool> reader_failed{false};
  std::thread reader([&] {
    util::Rng rng(5);
    while (!stop.load()) {
      const uint64_t k = rng.Uniform(100);
      uint64_t v = 0;
      if (!tree.Find(k * 1000000 + 1, &v) || v != k) {
        reader_failed.store(true);
        return;
      }
    }
  });
  for (uint64_t k = 0; k < 20000; ++k) tree.Insert(k * 7 + 3, k);
  stop.store(true);
  reader.join();
  EXPECT_FALSE(reader_failed.load());
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
}

}  // namespace
}  // namespace exhash::baseline
