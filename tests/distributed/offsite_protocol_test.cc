// Forcing the off-site protocols of Figure 14: with every split half
// spilled to another manager, partner buckets constantly live on different
// managers, so merges must run mergedown/mergeup+goahead and searches must
// cross manager boundaries via wrongbucket forwarding.

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "distributed/cluster.h"
#include "util/random.h"

namespace exhash::dist {
namespace {

Cluster::Options SpillEverything() {
  Cluster::Options o;
  o.num_directory_managers = 2;
  o.num_bucket_managers = 3;
  o.page_size = 112;  // capacity 4
  o.initial_depth = 1;
  o.max_depth = 16;
  o.spill_per_8 = 8;  // every split half goes off-site
  return o;
}

TEST(OffsiteProtocolTest, SpilledGrowthIsCorrect) {
  Cluster cluster(SpillEverything());
  auto client = cluster.NewClient();
  constexpr uint64_t kN = 600;
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(client->Insert(k, k * 5));
  uint64_t spilled = 0;
  uint64_t local = 0;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    spilled += cluster.bucket_manager(b).stats().splits_spilled;
    local += cluster.bucket_manager(b).stats().splits_local;
  }
  EXPECT_GT(spilled, 50u);
  EXPECT_EQ(local, 0u);  // every split was placed off-site
  for (uint64_t k = 0; k < kN; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(client->Find(k, &v)) << k;
    ASSERT_EQ(v, k * 5);
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(kN, &error)) << error;
}

TEST(OffsiteProtocolTest, CrossManagerMergesUseMergeProtocols) {
  Cluster cluster(SpillEverything());
  auto client = cluster.NewClient();
  constexpr uint64_t kN = 400;
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(client->Insert(k, k));
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(client->Remove(k)) << k;
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(0, &error)) << error;

  uint64_t remote_merges = 0;
  uint64_t gc = 0;
  uint64_t total_merges = 0;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    const auto s = cluster.bucket_manager(b).stats();
    remote_merges += s.merges_remote;
    total_merges += s.merges_local + s.merges_remote;
    gc += s.gc_pages;
  }
  // With every split spilled, partners are (almost) always off-site.
  EXPECT_GT(remote_merges, 0u);
  EXPECT_EQ(gc, total_merges);  // every tombstone reclaimed
}

TEST(OffsiteProtocolTest, ConcurrentChurnAcrossManagers) {
  Cluster cluster(SpillEverything());
  constexpr int kClients = 3;
  std::atomic<int64_t> net{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&cluster, &net, c] {
      auto client = cluster.NewClient();
      util::Rng rng(uint64_t(c) * 31 + 7);
      for (int i = 0; i < 1200; ++i) {
        const uint64_t key = rng.Uniform(64);
        if (rng.Bernoulli(0.5)) {
          if (client->Insert(key, key)) net.fetch_add(1);
        } else {
          if (client->Remove(key)) net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(uint64_t(net.load()), &error))
      << error;
}

TEST(OffsiteProtocolTest, DegenerateSingleManagerCluster) {
  Cluster::Options o;
  o.num_directory_managers = 1;
  o.num_bucket_managers = 1;
  o.page_size = 112;
  o.initial_depth = 1;
  Cluster cluster(o);
  auto client = cluster.NewClient();
  std::unordered_map<uint64_t, uint64_t> oracle;
  util::Rng rng(3);
  for (int i = 0; i < 1500; ++i) {
    const uint64_t key = rng.Uniform(100);
    if (rng.Bernoulli(0.6)) {
      if (client->Insert(key, key + 1)) oracle[key] = key + 1;
    } else {
      if (client->Remove(key)) oracle.erase(key);
    }
  }
  for (const auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(client->Find(k, &got));
    ASSERT_EQ(got, v);
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(oracle.size(), &error)) << error;
}

TEST(OffsiteProtocolTest, MergingDisabledClusterNeverMerges) {
  Cluster::Options o = SpillEverything();
  o.enable_merging = false;
  Cluster cluster(o);
  auto client = cluster.NewClient();
  for (uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(client->Insert(k, k));
  for (uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(client->Remove(k));
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(0, &error)) << error;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    const auto s = cluster.bucket_manager(b).stats();
    EXPECT_EQ(s.merges_local + s.merges_remote, 0u);
    EXPECT_EQ(s.gc_pages, 0u);
  }
  // The directory keeps its high-water depth.
  EXPECT_GT(cluster.directory_manager(0).depth(), 2);
}

TEST(OffsiteProtocolTest, ManyReplicasConverge) {
  Cluster::Options o;
  o.num_directory_managers = 5;
  o.num_bucket_managers = 2;
  o.page_size = 112;
  o.initial_depth = 2;
  o.net.delay_ns_max = 100000;
  Cluster cluster(o);
  auto client = cluster.NewClient();
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(client->Insert(k, k));
  for (uint64_t k = 0; k < 200; k += 2) ASSERT_TRUE(client->Remove(k));
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(100, &error)) << error;
}

}  // namespace
}  // namespace exhash::dist
