// Chaos harness (DESIGN.md §5, EXPERIMENTS.md E10): randomized fault
// schedules over concurrent clients, then a fault-free drain and full
// quiescent-state validation.
//
// Each run storms the cluster with client-edge drops (20%), duplication
// (10%), delay spikes, interior duplication of the re-delivery-tolerant
// message types, and one partition window that cuts a directory replica's
// request edge mid-run.  Clients retry with backoff and fail over between
// replicas; the (client_id, client_seq) dedup tables must keep every
// mutation exactly-once.  After the storm: ClearFaults, WaitQuiescent,
// ValidateQuiescent — identical replicas, sound bucket graph, and the
// *exact* expected record count (any duplicated or lost application would
// break it).
//
// Runs for a fixed set of seeds (ctest label: chaos) so failures reproduce.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "distributed/cluster.h"
#include "util/random.h"

namespace exhash::dist {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, StormThenConverge) {
  const uint64_t seed = GetParam();

  Cluster::Options o;
  o.num_directory_managers = 3;
  o.num_bucket_managers = 2;
  o.page_size = 112;  // capacity 4: lots of splits and merges
  o.initial_depth = 2;
  o.max_depth = 16;
  o.spill_per_8 = 2;  // cross-manager chains under fire
  o.net.delay_ns_min = 0;
  o.net.delay_ns_max = 200'000;
  o.net.seed = seed;
  o.faults.request_drop = 0.20;
  o.faults.request_dup = 0.10;
  o.faults.request_spike_prob = 0.05;
  o.faults.request_spike_ns = 2'000'000;
  o.faults.reply_drop = 0.20;
  o.faults.reply_dup = 0.10;
  o.faults.reply_spike_prob = 0.05;
  o.faults.reply_spike_ns = 2'000'000;
  o.faults.interior_dup = 0.05;
  o.faults.interior_spike_prob = 0.10;
  o.faults.interior_spike_ns = 1'000'000;
  o.retry.enabled = true;
  Cluster cluster(o);

  // One partition window per run: a replica chosen by the seed loses its
  // client request edge for 40 ms early in the storm.  Clients talking to
  // it must fail over.
  const int victim = int(seed % uint64_t(o.num_directory_managers));
  cluster.network().Partition(cluster.directory_request_port(victim),
                              MsgMask(MsgType::kRequest),
                              std::chrono::milliseconds(5),
                              std::chrono::milliseconds(40),
                              /*drop=*/true);

  constexpr int kClients = 4;
  constexpr uint64_t kKeysPerClient = 96;
  std::atomic<uint64_t> wrong_reads{0};
  std::atomic<uint64_t> total_retries{0};
  std::atomic<uint64_t> total_failovers{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = cluster.NewClient();
      // Disjoint key ranges per client keep the expected final count exact.
      const uint64_t base = uint64_t(c + 1) << 32;
      util::Rng rng(seed * 977 + uint64_t(c));
      std::vector<uint64_t> keys(kKeysPerClient);
      for (uint64_t i = 0; i < kKeysPerClient; ++i) keys[i] = base + i;
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.Uniform(i)]);
      }
      // Phase 1: insert everything.  The boolean result is not asserted: a
      // retry racing its own duplicated first delivery can be answered
      // "duplicate key" — either way the record is present exactly once.
      for (const uint64_t k : keys) client->Insert(k, k ^ 0x5aa5);
      // Phase 2: every insert must be readable mid-storm (read-your-writes
      // through any replica, stale or not).
      for (const uint64_t k : keys) {
        uint64_t v = 0;
        if (!client->Find(k, &v) || v != (k ^ 0x5aa5)) {
          wrong_reads.fetch_add(1);
        }
      }
      // Phase 3: delete the first half of the shuffled order.
      for (uint64_t i = 0; i < kKeysPerClient / 2; ++i) {
        client->Remove(keys[i]);
      }
      total_retries.fetch_add(client->stats().retries);
      total_failovers.fetch_add(client->stats().failovers);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong_reads.load(), 0u);

  // Fault-free drain: stop injecting, let every delayed/duplicated message
  // settle, then validate the quiescent state.
  cluster.ClearFaults();
  ASSERT_TRUE(cluster.WaitQuiescent(60000));
  const uint64_t expected =
      uint64_t(kClients) * (kKeysPerClient - kKeysPerClient / 2);
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(expected, &error)) << error;

  // The storm actually stormed: faults fired and the recovery machinery
  // (retries and at least one of failover/dedup) did real work.
  const NetworkStats net = cluster.network_stats();
  EXPECT_GT(net.dropped, 0u);
  EXPECT_GT(net.duplicated, 0u);
  EXPECT_GT(total_retries.load(), 0u);

  // Fault bookkeeping must balance exactly: every Send() attempt either
  // became an enqueued copy or was dropped, and every extra enqueued copy
  // came from a dup rule.  `dropped` counts discarded copies (a dropped
  // duplicate counts on both sides), so this holds with equality.
  EXPECT_EQ(net.total_sent + net.dropped, net.attempts + net.duplicated);
  // Receivers can only pop what was enqueued.  (Not equality: a retrying
  // client abandons stale duplicate replies in its uncounted reply port.)
  EXPECT_LE(net.total_received, net.total_sent);
  EXPECT_GT(net.total_received, 0u);
  // Per-type counters partition the totals.
  uint64_t per_type_sent = 0;
  uint64_t per_type_recv = 0;
  for (int t = 0; t < kNumMsgTypes; ++t) {
    per_type_sent += net.per_type[t];
    per_type_recv += net.per_type_recv[t];
  }
  EXPECT_EQ(per_type_sent, net.total_sent);
  EXPECT_EQ(per_type_recv, net.total_received);
  uint64_t dedup_hits = 0;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    dedup_hits += cluster.bucket_manager(b).stats().dedup_hits;
  }
  uint64_t dup_swallowed = 0;
  for (int d = 0; d < cluster.num_directory_managers(); ++d) {
    dup_swallowed += cluster.directory_manager(d).stats().dup_requests;
  }
  ::testing::Test::RecordProperty("retries", int(total_retries.load()));
  ::testing::Test::RecordProperty("failovers", int(total_failovers.load()));
  ::testing::Test::RecordProperty("bm_dedup_hits", int(dedup_hits));
  ::testing::Test::RecordProperty("dm_dup_swallowed", int(dup_swallowed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace exhash::dist
