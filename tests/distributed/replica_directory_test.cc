// Unit and property tests for the version-ordered replica update rule —
// including the paper's split-then-merge reordering example, verified
// literally, and a permutation-convergence property: any delivery order of
// a valid update history leaves every replica identical.

#include "distributed/replica_directory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace exhash::dist {
namespace {

// A tiny scripted world: we synthesize the update stream a bucket-manager
// population would emit, tracking bucket versions ourselves.
struct World {
  // One conceptual bucket per pattern; versions keyed by (pattern, ld) are
  // overkill — versions live per *page*, and the "0" page survives, so we
  // track versions per surviving pattern.
  ReplicaDirectory truth{1, 10};
  std::vector<DirUpdate> history;
  uint64_t next_page = 100;

  World() {
    truth.SeedEntry(0, DirEntry{0, 0, 0});
    truth.SeedEntry(1, DirEntry{1, 0, 0});
    truth.set_depthcount(2);
  }

  // Splits the bucket holding pseudokey `pk`.
  void Split(uint64_t pk) {
    const DirEntry e = truth.Lookup(pk);
    // Determine the bucket's localdepth from the directory shape: count
    // entries pointing at the same page.
    int ld = truth.depth();
    while (ld > 0) {
      const uint64_t partner_idx =
          (util::LowBits(pk, truth.depth())) ^ (uint64_t{1} << (ld - 1));
      if (truth.Entry(partner_idx).page == e.page &&
          truth.Entry(partner_idx).mgr == e.mgr) {
        --ld;  // partner shares the page: localdepth is smaller
      } else {
        break;
      }
    }
    DirUpdate u;
    u.op = OpType::kInsert;
    u.pseudokey = pk;
    u.old_localdepth = ld;
    u.version1 = e.version + 1;
    u.version2 = e.version + 1;
    u.page = storage::PageId(next_page++);
    u.mgr = 0;
    std::vector<DirUpdate> applied;
    truth.Submit(u, &applied);
    ASSERT_EQ(applied.size(), 1u) << "scripted split must apply in order";
    history.push_back(u);
  }

  // Merges the pair at the level of the bucket holding `pk` (both partners
  // must be at equal localdepth in the scripted history).
  void Merge(uint64_t pk, int localdepth) {
    const uint64_t family = util::LowBits(pk, localdepth - 1);
    const DirEntry zero = truth.Entry(family);
    const DirEntry one =
        truth.Entry(family | (uint64_t{1} << (localdepth - 1)));
    DirUpdate u;
    u.op = OpType::kDelete;
    u.pseudokey = pk;
    u.old_localdepth = localdepth;
    u.version1 = zero.version;
    u.version2 = one.version;
    u.page = zero.page;  // the "0" partner's page survives
    u.mgr = zero.mgr;
    std::vector<DirUpdate> applied;
    truth.Submit(u, &applied);
    ASSERT_EQ(applied.size(), 1u) << "scripted merge must apply in order";
    history.push_back(u);
  }

  // Replays `history` in the given order on a fresh replica; returns it.
  ReplicaDirectory Replay(const std::vector<size_t>& order) {
    ReplicaDirectory replica(1, 10);
    replica.SeedEntry(0, DirEntry{0, 0, 0});
    replica.SeedEntry(1, DirEntry{1, 0, 0});
    replica.set_depthcount(2);
    std::vector<DirUpdate> applied;
    for (size_t i : order) replica.Submit(history[i], &applied);
    EXPECT_EQ(applied.size(), history.size()) << "every update must apply";
    EXPECT_EQ(replica.pending(), 0u);
    return replica;
  }
};

TEST(ReplicaDirectoryTest, SplitAppliesAndDoubles) {
  World w;
  w.Split(0b0);  // bucket "0" at localdepth 1 == depth: doubles to 2
  EXPECT_EQ(w.truth.depth(), 2);
  EXPECT_EQ(w.truth.depthcount(), 2);
  EXPECT_EQ(w.truth.Entry(0b00).page, 0u);
  EXPECT_EQ(w.truth.Entry(0b10).page, 100u);  // the new half
  EXPECT_EQ(w.truth.Entry(0b00).version, 1u);
  EXPECT_EQ(w.truth.Entry(0b10).version, 1u);
  // The untouched "1" family keeps version 0 on both mirrored entries.
  EXPECT_EQ(w.truth.Entry(0b01).version, 0u);
  EXPECT_EQ(w.truth.Entry(0b11).version, 0u);
}

TEST(ReplicaDirectoryTest, MergeAppliesAndHalves) {
  World w;
  w.Split(0b0);
  w.Merge(0b0, 2);  // merge "00"+"10" back: depthcount 2 -> 0 -> halve
  EXPECT_EQ(w.truth.depth(), 1);
  EXPECT_EQ(w.truth.Entry(0).page, 0u);
  EXPECT_EQ(w.truth.Entry(0).version, 2u);  // max(1,1)+1
}

// The paper's section-3 example: a replica that receives the merge before
// the split must delay it; applying the split releases the merge.
TEST(ReplicaDirectoryTest, SplitThenMergeReorderedIsDelayed) {
  World w;
  w.Split(0b0);      // history[0]
  w.Merge(0b0, 2);   // history[1]

  ReplicaDirectory replica(1, 10);
  replica.SeedEntry(0, DirEntry{0, 0, 0});
  replica.SeedEntry(1, DirEntry{1, 0, 0});
  replica.set_depthcount(2);

  std::vector<DirUpdate> applied;
  replica.Submit(w.history[1], &applied);  // merge first: must be delayed
  EXPECT_TRUE(applied.empty());
  EXPECT_EQ(replica.pending(), 1u);
  EXPECT_EQ(replica.stats().delayed, 1u);

  replica.Submit(w.history[0], &applied);  // split: releases the merge
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_EQ(replica.pending(), 0u);
  EXPECT_TRUE(replica.ConvergedWith(w.truth));
}

TEST(ReplicaDirectoryTest, DeepSplitChainReversedStillConverges) {
  World w;
  w.Split(0b0);      // ld1 -> ld2
  w.Split(0b00);     // ld2 -> ld3
  w.Split(0b000);    // ld3 -> ld4
  const ReplicaDirectory replayed = w.Replay({2, 1, 0});  // fully reversed
  EXPECT_TRUE(replayed.ConvergedWith(w.truth));
}

TEST(ReplicaDirectoryTest, IndependentFamiliesApplyInAnyOrder) {
  World w;
  w.Split(0b0);  // family 0
  w.Split(0b1);  // family 1 — independent
  for (const std::vector<size_t>& order :
       {std::vector<size_t>{0, 1}, std::vector<size_t>{1, 0}}) {
    const ReplicaDirectory replayed = w.Replay(order);
    EXPECT_TRUE(replayed.ConvergedWith(w.truth));
  }
}

// Property: EVERY permutation of a nontrivial mixed history converges.
TEST(ReplicaDirectoryTest, AllPermutationsOfMixedHistoryConverge) {
  World w;
  w.Split(0b0);     // depth 2: 00 | 10 | 1
  w.Split(0b1);     // depth 2: 00 | 10 | 01 | 11
  w.Split(0b00);    // depth 3
  w.Merge(0b00, 3); // merge 000+100 back
  w.Merge(0b1, 2);  // merge 01+11 back
  ASSERT_EQ(w.history.size(), 5u);

  std::vector<size_t> order = {0, 1, 2, 3, 4};
  int permutations = 0;
  do {
    const ReplicaDirectory replayed = w.Replay(order);
    ASSERT_TRUE(replayed.ConvergedWith(w.truth))
        << "permutation " << permutations;
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(permutations, 120);
}

// Randomized soak: longer histories, random shuffles.
TEST(ReplicaDirectoryTest, RandomShufflesOfLongHistoriesConverge) {
  util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    World w;
    // Random interleaving of splits and merges over a few families.
    std::vector<std::pair<uint64_t, int>> splittable;  // (pk, current ld)
    w.Split(0b0);
    w.Split(0b1);
    w.Split(0b00);
    w.Split(0b01);
    w.Merge(0b00, 3);
    w.Split(0b10);
    w.Merge(0b01, 3);
    w.Merge(0b10, 3);
    (void)splittable;

    std::vector<size_t> order(w.history.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int shuffle = 0; shuffle < 10; ++shuffle) {
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.Uniform(i)]);
      }
      const ReplicaDirectory replayed = w.Replay(order);
      ASSERT_TRUE(replayed.ConvergedWith(w.truth))
          << "round " << round << " shuffle " << shuffle;
    }
  }
}

TEST(ReplicaDirectoryTest, StaleDuplicateIsDiscardedNotSaved) {
  World w;
  w.Split(0b0);
  ReplicaDirectory replica = w.Replay({0});
  // A duplicated delivery of the already-applied split: its precondition is
  // surpassed, so it must be discarded — saving it would leave a pending
  // update that never applies (and would wedge quiescence detection).
  EXPECT_TRUE(replica.IsStale(w.history[0]));
  std::vector<DirUpdate> applied;
  replica.Submit(w.history[0], &applied);
  EXPECT_TRUE(applied.empty());
  EXPECT_EQ(replica.pending(), 0u);
  EXPECT_EQ(replica.stats().discarded, 1u);
  EXPECT_TRUE(replica.ConvergedWith(w.truth));
}

TEST(ReplicaDirectoryTest, DuplicateOfSavedUpdateIsDiscarded) {
  World w;
  w.Split(0b0);     // history[0]
  w.Merge(0b0, 2);  // history[1]
  ReplicaDirectory replica(1, 10);
  replica.SeedEntry(0, DirEntry{0, 0, 0});
  replica.SeedEntry(1, DirEntry{1, 0, 0});
  replica.set_depthcount(2);
  std::vector<DirUpdate> applied;
  // Merge arrives early (saved), then again (duplicate of a saved update).
  replica.Submit(w.history[1], &applied);
  EXPECT_EQ(replica.pending(), 1u);
  replica.Submit(w.history[1], &applied);
  EXPECT_EQ(replica.pending(), 1u) << "duplicate must not be saved twice";
  EXPECT_EQ(replica.stats().discarded, 1u);
  // The split releases the one saved copy; both updates apply exactly once.
  replica.Submit(w.history[0], &applied);
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_EQ(replica.pending(), 0u);
  EXPECT_TRUE(replica.ConvergedWith(w.truth));
}

TEST(ReplicaDirectoryTest, MergeDuplicateStaleAfterDirectoryHalves) {
  World w;
  w.Split(0b0);
  w.Merge(0b0, 2);  // applying this halves the directory back to depth 1
  ReplicaDirectory replica = w.Replay({0, 1});
  ASSERT_EQ(replica.depth(), 1);
  // The merge's old_localdepth (2) now exceeds the replica's depth; the
  // duplicate must still be recognized as stale via the family entry.
  EXPECT_TRUE(replica.IsStale(w.history[1]));
  std::vector<DirUpdate> applied;
  replica.Submit(w.history[1], &applied);
  EXPECT_TRUE(applied.empty());
  EXPECT_EQ(replica.pending(), 0u);
  EXPECT_TRUE(replica.ConvergedWith(w.truth));
}

TEST(ReplicaDirectoryTest, DuplicatedShuffledDeliveryConverges) {
  // Every permutation property, strengthened: each update is delivered one
  // to three times in a random interleaving; replicas must converge with
  // every logical update applied exactly once and nothing left pending.
  util::Rng rng(1234);
  for (int round = 0; round < 20; ++round) {
    World w;
    w.Split(0b0);
    w.Split(0b1);
    w.Split(0b00);
    w.Split(0b01);
    w.Merge(0b00, 3);
    w.Split(0b10);
    w.Merge(0b01, 3);
    w.Merge(0b10, 3);

    std::vector<size_t> deliveries;
    for (size_t i = 0; i < w.history.size(); ++i) {
      const uint64_t copies = 1 + rng.Uniform(3);
      for (uint64_t c = 0; c < copies; ++c) deliveries.push_back(i);
    }
    for (size_t i = deliveries.size(); i > 1; --i) {
      std::swap(deliveries[i - 1], deliveries[rng.Uniform(i)]);
    }

    ReplicaDirectory replica(1, 10);
    replica.SeedEntry(0, DirEntry{0, 0, 0});
    replica.SeedEntry(1, DirEntry{1, 0, 0});
    replica.set_depthcount(2);
    std::vector<DirUpdate> applied;
    for (size_t i : deliveries) replica.Submit(w.history[i], &applied);
    ASSERT_EQ(applied.size(), w.history.size()) << "round " << round;
    ASSERT_EQ(replica.pending(), 0u) << "round " << round;
    ASSERT_EQ(replica.stats().discarded,
              deliveries.size() - w.history.size())
        << "round " << round;
    ASSERT_TRUE(replica.ConvergedWith(w.truth)) << "round " << round;
  }
}

TEST(ReplicaDirectoryTest, ConvergedWithDetectsDifferences) {
  ReplicaDirectory a(1, 8);
  ReplicaDirectory b(1, 8);
  a.SeedEntry(0, DirEntry{0, 0, 0});
  a.SeedEntry(1, DirEntry{1, 0, 0});
  b.SeedEntry(0, DirEntry{0, 0, 0});
  b.SeedEntry(1, DirEntry{2, 0, 0});  // differs
  a.set_depthcount(2);
  b.set_depthcount(2);
  EXPECT_FALSE(a.ConvergedWith(b));
  b.SeedEntry(1, DirEntry{1, 0, 0});
  EXPECT_TRUE(a.ConvergedWith(b));
}

}  // namespace
}  // namespace exhash::dist
