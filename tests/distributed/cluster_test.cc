// End-to-end tests of the distributed extendible hash file: replicated
// directory managers, partitioned bucket managers, asynchronous
// version-ordered directory updates, and gated garbage collection.

#include "distributed/cluster.h"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace exhash::dist {
namespace {

Cluster::Options SmallCluster() {
  Cluster::Options o;
  o.num_directory_managers = 2;
  o.num_bucket_managers = 2;
  o.page_size = 112;  // capacity 4
  o.initial_depth = 2;
  o.max_depth = 16;
  return o;
}

TEST(ClusterTest, EmptyClusterValidates) {
  Cluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  EXPECT_TRUE(cluster.ValidateQuiescent(0, &error)) << error;
}

TEST(ClusterTest, SingleClientLifecycle) {
  Cluster cluster(SmallCluster());
  auto client = cluster.NewClient();
  EXPECT_FALSE(client->Find(7, nullptr));
  EXPECT_TRUE(client->Insert(7, 70));
  EXPECT_FALSE(client->Insert(7, 71));  // duplicate
  uint64_t v = 0;
  EXPECT_TRUE(client->Find(7, &v));
  EXPECT_EQ(v, 70u);
  EXPECT_TRUE(client->Remove(7));
  EXPECT_FALSE(client->Remove(7));
  EXPECT_FALSE(client->Find(7, nullptr));
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  EXPECT_TRUE(cluster.ValidateQuiescent(0, &error)) << error;
}

TEST(ClusterTest, GrowthAcrossManagers) {
  Cluster cluster(SmallCluster());
  auto client = cluster.NewClient();
  constexpr uint64_t kN = 400;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(client->Insert(k, k * 3)) << k;
  }
  for (uint64_t k = 0; k < kN; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(client->Find(k, &v)) << k;
    ASSERT_EQ(v, k * 3);
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(kN, &error)) << error;
  // Splits actually happened.
  uint64_t splits = 0;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    splits += cluster.bucket_manager(b).stats().splits_local +
              cluster.bucket_manager(b).stats().splits_spilled;
  }
  EXPECT_GT(splits, 10u);
}

TEST(ClusterTest, ShrinkMergesAndCollectsGarbage) {
  Cluster cluster(SmallCluster());
  auto client = cluster.NewClient();
  constexpr uint64_t kN = 300;
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(client->Insert(k, k));
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(client->Remove(k)) << k;
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(0, &error)) << error;
  uint64_t merges = 0;
  uint64_t gc = 0;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    const BucketManagerStats s = cluster.bucket_manager(b).stats();
    merges += s.merges_local + s.merges_remote;
    gc += s.gc_pages;
  }
  EXPECT_GT(merges, 0u);
  // Every merge tombstone must eventually be reclaimed.
  EXPECT_EQ(gc, merges);
}

TEST(ClusterTest, SpilledSplitsCrossManagerChains) {
  Cluster::Options o = SmallCluster();
  o.spill_per_8 = 4;  // half the splits land on another manager
  Cluster cluster(o);
  auto client = cluster.NewClient();
  constexpr uint64_t kN = 500;
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(client->Insert(k, k));
  uint64_t spilled = 0;
  for (int b = 0; b < cluster.num_bucket_managers(); ++b) {
    spilled += cluster.bucket_manager(b).stats().splits_spilled;
  }
  EXPECT_GT(spilled, 0u);
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(client->Find(k, nullptr)) << k;
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(kN, &error)) << error;
}

TEST(ClusterTest, OracleComparisonRandomOps) {
  Cluster::Options o = SmallCluster();
  o.spill_per_8 = 2;
  Cluster cluster(o);
  auto client = cluster.NewClient();
  std::unordered_map<uint64_t, uint64_t> oracle;
  util::Rng rng(4242);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t key = rng.Uniform(200);
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted = client->Insert(key, key + i);
        const bool expected = oracle.find(key) == oracle.end();
        ASSERT_EQ(inserted, expected) << "op " << i;
        if (inserted) oracle[key] = key + i;
        break;
      }
      case 1:
        ASSERT_EQ(client->Remove(key), oracle.erase(key) > 0) << "op " << i;
        break;
      case 2: {
        uint64_t v = 0;
        const bool found = client->Find(key, &v);
        const auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end()) << "op " << i;
        if (found) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(oracle.size(), &error)) << error;
}

TEST(ClusterTest, ConcurrentClientsDisjointKeys) {
  Cluster::Options o = SmallCluster();
  o.num_directory_managers = 3;
  o.num_bucket_managers = 3;
  Cluster cluster(o);
  constexpr int kClients = 4;
  constexpr uint64_t kPerClient = 250;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = cluster.NewClient();
      const uint64_t base = uint64_t(c) << 32;
      for (uint64_t k = 0; k < kPerClient; ++k) {
        ASSERT_TRUE(client->Insert(base + k, k));
      }
      for (uint64_t k = 0; k < kPerClient; ++k) {
        uint64_t v = 0;
        ASSERT_TRUE(client->Find(base + k, &v));
        ASSERT_EQ(v, k);
      }
      for (uint64_t k = 0; k < kPerClient; k += 2) {
        ASSERT_TRUE(client->Remove(base + k));
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(
      cluster.ValidateQuiescent(kClients * kPerClient / 2, &error))
      << error;
}

// The paper's section-3 scenario: with delivery jitter, copyupdates can
// arrive at a replica in the wrong order (merge before the split that
// produced the buckets).  Version ordering must delay and reorder them; the
// replicas must still converge.
TEST(ClusterTest, VersionOrderingUnderNetworkJitter) {
  Cluster::Options o = SmallCluster();
  o.num_directory_managers = 3;
  o.net.delay_ns_min = 0;
  o.net.delay_ns_max = 500000;  // 0.5 ms jitter: heavy reordering
  o.net.seed = 7;
  Cluster cluster(o);
  auto client = cluster.NewClient();
  util::Rng rng(99);
  // Insert/delete churn in a tiny key space drives constant split/merge
  // pairs — the adversarial case for update ordering.
  uint64_t live = 0;
  std::unordered_map<uint64_t, bool> present;
  for (int i = 0; i < 1500; ++i) {
    const uint64_t key = rng.Uniform(40);
    if (rng.Bernoulli(0.5)) {
      if (client->Insert(key, key)) {
        present[key] = true;
      }
    } else {
      if (client->Remove(key)) {
        present[key] = false;
      }
    }
  }
  for (const auto& [k, p] : present) {
    if (p) ++live;
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(live, &error)) << error;
  // The jitter must actually have exercised the delay queue on some replica.
  uint64_t delayed = 0;
  for (int d = 0; d < cluster.num_directory_managers(); ++d) {
    delayed += cluster.directory_manager(d).stats().updates_delayed;
  }
  // (Not asserted > 0: reordering is probabilistic — but report it.)
  RecordProperty("updates_delayed", int(delayed));
}

// "A second goal is to minimize message traffic" (section 3): a find that
// needs no recovery costs exactly four messages — request, op-forward,
// bucketdone, reply — independent of replica and manager counts.
TEST(ClusterTest, FindCostsExactlyFourMessages) {
  for (const int dms : {1, 3}) {
    Cluster::Options o = SmallCluster();
    o.num_directory_managers = dms;
    o.num_bucket_managers = 3;
    Cluster cluster(o);
    auto client = cluster.NewClient();
    for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(client->Insert(k, k));
    ASSERT_TRUE(cluster.WaitQuiescent());
    cluster.ResetNetworkStats();
    constexpr uint64_t kFinds = 200;
    for (uint64_t k = 0; k < kFinds; ++k) {
      ASSERT_TRUE(client->Find(k % 50, nullptr));
    }
    ASSERT_TRUE(cluster.WaitQuiescent());
    const NetworkStats s = cluster.network_stats();
    EXPECT_EQ(s.total_sent, 4 * kFinds) << "replicas=" << dms;
    EXPECT_EQ(s.per_type[int(MsgType::kRequest)], kFinds);
    EXPECT_EQ(s.per_type[int(MsgType::kOpForward)], kFinds);
    EXPECT_EQ(s.per_type[int(MsgType::kBucketDone)], kFinds);
    EXPECT_EQ(s.per_type[int(MsgType::kReply)], kFinds);
  }
}

TEST(ClusterTest, StaleReplicaRoutingRecovers) {
  // One client hammers inserts through directory manager A while another
  // reads through B; B's copy lags by design (async updates), so reads must
  // recover via wrongbucket forwarding / next links.
  Cluster::Options o = SmallCluster();
  o.num_directory_managers = 2;
  o.net.delay_ns_min = 0;
  o.net.delay_ns_max = 200000;
  Cluster cluster(o);
  auto writer = cluster.NewClient();
  auto reader = cluster.NewClient();
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(writer->Insert(k, k * 7));
    // Immediately readable through any replica, stale or not.
    uint64_t v = 0;
    ASSERT_TRUE(reader->Find(k, &v)) << k;
    ASSERT_EQ(v, k * 7);
  }
  ASSERT_TRUE(cluster.WaitQuiescent());
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(300, &error)) << error;
}

TEST(ClusterTest, WaitQuiescentSurvivesLargeDelayJitter) {
  // Regression: TotalQueued() counted messages whose deliver_at lay in the
  // future, so the old fixed-cadence poll could spin its whole budget while
  // a drained network merely had delayed stragglers.  The probe now sleeps
  // until the earliest delivery, so heavy jitter converges comfortably.
  Cluster::Options o = SmallCluster();
  o.net.delay_ns_min = 0;
  o.net.delay_ns_max = 15'000'000;  // up to 15 ms per hop
  Cluster cluster(o);
  auto client = cluster.NewClient();
  for (uint64_t k = 0; k < 20; ++k) ASSERT_TRUE(client->Insert(k, k));
  ASSERT_TRUE(cluster.WaitQuiescent(20000));
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(20, &error)) << error;
}

TEST(ClusterTest, WaitQuiescentTimesOutPromptlyWhenWedged) {
  Cluster::Options o = SmallCluster();
  Cluster cluster(o);

  // Wedge bucket manager 0: stall every message into its front port (except
  // shutdown) for the next 800 ms.
  const uint32_t stall_mask = kAllMsgMask & ~MsgMask(MsgType::kShutdown);
  cluster.network().Partition(cluster.bucket_front_port(0), stall_mask,
                              std::chrono::seconds(0),
                              std::chrono::milliseconds(800),
                              /*drop=*/false);

  // Pick a key routed to a bucket on manager 0 and start an insert; its
  // op-forward parks in the stall window, leaving the directory manager
  // with rho > 0.
  uint64_t key = 0;
  while (cluster.hasher().Hash(key) % 4 % 2 != 0) ++key;
  const PortId user = cluster.network().CreateClientPort();
  Message req;
  req.type = MsgType::kRequest;
  req.op = OpType::kInsert;
  req.key = key;
  req.value = 1;
  req.user_port = user;
  cluster.network().Send(cluster.directory_request_port(0), req);
  while (cluster.directory_manager(0).Idle()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The timeout path must respect its budget, not hang for the default 30 s.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(cluster.WaitQuiescent(250));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(700));

  // Once the window closes the op completes and the cluster drains.
  const Message reply = cluster.network().Receive(user);
  EXPECT_TRUE(reply.success);
  ASSERT_TRUE(cluster.WaitQuiescent(5000));
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(1, &error)) << error;
}

TEST(ClusterTest, RetryFailoverSurvivesRequestDrops) {
  // Client-edge loss in both directions; the retry/failover loop plus the
  // dedup tables must deliver every op exactly once.
  Cluster::Options o = SmallCluster();
  o.num_directory_managers = 3;
  o.faults.request_drop = 0.10;
  o.faults.reply_drop = 0.10;
  o.retry.enabled = true;
  Cluster cluster(o);
  auto client = cluster.NewClient();
  constexpr uint64_t kN = 120;
  for (uint64_t k = 0; k < kN; ++k) client->Insert(k, k * 5);
  for (uint64_t k = 0; k < kN; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(client->Find(k, &v)) << k;
    ASSERT_EQ(v, k * 5);
  }
  for (uint64_t k = 0; k < kN / 2; ++k) client->Remove(k);
  cluster.ClearFaults();
  ASSERT_TRUE(cluster.WaitQuiescent(30000));
  std::string error;
  ASSERT_TRUE(cluster.ValidateQuiescent(kN - kN / 2, &error)) << error;
  // With 480+ request/reply crossings at 10% loss each way, some retries
  // happened (P[none] < 1e-20) — the machinery was actually exercised.
  EXPECT_GT(client->stats().retries, 0u);
  EXPECT_GT(cluster.network_stats().dropped, 0u);
}

}  // namespace
}  // namespace exhash::dist
