#include "distributed/network.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace exhash::dist {
namespace {

TEST(SimNetworkTest, SendReceiveRoundtrip) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  m.type = MsgType::kRequest;
  m.key = 42;
  net.Send(port, m);
  const Message r = net.Receive(port);
  EXPECT_EQ(r.type, MsgType::kRequest);
  EXPECT_EQ(r.key, 42u);
}

TEST(SimNetworkTest, ZeroDelayPreservesSendOrder) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  for (uint64_t i = 0; i < 100; ++i) {
    Message m;
    m.type = MsgType::kRequest;
    m.key = i;
    net.Send(port, m);
  }
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(net.Receive(port).key, i);
  }
}

TEST(SimNetworkTest, PortsAreIsolated) {
  SimNetwork net;
  const PortId a = net.CreatePort();
  const PortId b = net.CreatePort();
  Message m;
  m.type = MsgType::kReply;
  m.key = 7;
  net.Send(a, m);
  Message other;
  EXPECT_FALSE(net.TryReceive(b, &other));
  EXPECT_TRUE(net.TryReceive(a, &other));
  EXPECT_EQ(other.key, 7u);
}

TEST(SimNetworkTest, TryReceiveEmptyPort) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  EXPECT_FALSE(net.TryReceive(port, &m));
}

TEST(SimNetworkTest, ReceiveBlocksUntilSend) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Message m;
    m.type = MsgType::kReply;
    m.key = 5;
    net.Send(port, m);
  });
  const Message r = net.Receive(port);  // must not return early
  EXPECT_EQ(r.key, 5u);
  sender.join();
}

TEST(SimNetworkTest, JitterReordersDeliveries) {
  SimNetwork net({.delay_ns_min = 0, .delay_ns_max = 3000000, .seed = 9});
  const PortId port = net.CreatePort();
  constexpr int kMsgs = 60;
  for (uint64_t i = 0; i < kMsgs; ++i) {
    Message m;
    m.type = MsgType::kRequest;
    m.key = i;
    net.Send(port, m);
  }
  std::vector<uint64_t> order;
  for (int i = 0; i < kMsgs; ++i) order.push_back(net.Receive(port).key);
  // All delivered exactly once...
  std::vector<uint64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(sorted[i], i);
  // ...but not in send order (with overwhelming probability).
  bool reordered = false;
  for (int i = 1; i < kMsgs; ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(SimNetworkTest, CountsPerType) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  m.type = MsgType::kUpdate;
  net.Send(port, m);
  net.Send(port, m);
  m.type = MsgType::kReply;
  net.Send(port, m);
  const NetworkStats s = net.stats();
  EXPECT_EQ(s.total_sent, 3u);
  EXPECT_EQ(s.per_type[int(MsgType::kUpdate)], 2u);
  EXPECT_EQ(s.per_type[int(MsgType::kReply)], 1u);
  net.ResetStats();
  EXPECT_EQ(net.stats().total_sent, 0u);
}

TEST(SimNetworkTest, TotalQueuedTracksBacklog) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  EXPECT_EQ(net.TotalQueued(), 0u);
  Message m;
  m.type = MsgType::kRequest;
  net.Send(port, m);
  net.Send(port, m);
  EXPECT_EQ(net.TotalQueued(), 2u);
  net.Receive(port);
  EXPECT_EQ(net.TotalQueued(), 1u);
}

TEST(SimNetworkTest, ManyProducersOneConsumer) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Message m;
        m.type = MsgType::kRequest;
        m.key = uint64_t(t) * kPerThread + i;
        net.Send(port, m);
      }
    });
  }
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    const Message r = net.Receive(port);
    ASSERT_LT(r.key, seen.size());
    ASSERT_FALSE(seen[r.key]);
    seen[r.key] = true;
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace exhash::dist
