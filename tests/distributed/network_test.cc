#include "distributed/network.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace exhash::dist {
namespace {

TEST(SimNetworkTest, SendReceiveRoundtrip) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  m.type = MsgType::kRequest;
  m.key = 42;
  net.Send(port, m);
  const Message r = net.Receive(port);
  EXPECT_EQ(r.type, MsgType::kRequest);
  EXPECT_EQ(r.key, 42u);
}

TEST(SimNetworkTest, ZeroDelayPreservesSendOrder) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  for (uint64_t i = 0; i < 100; ++i) {
    Message m;
    m.type = MsgType::kRequest;
    m.key = i;
    net.Send(port, m);
  }
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(net.Receive(port).key, i);
  }
}

TEST(SimNetworkTest, PortsAreIsolated) {
  SimNetwork net;
  const PortId a = net.CreatePort();
  const PortId b = net.CreatePort();
  Message m;
  m.type = MsgType::kReply;
  m.key = 7;
  net.Send(a, m);
  Message other;
  EXPECT_FALSE(net.TryReceive(b, &other));
  EXPECT_TRUE(net.TryReceive(a, &other));
  EXPECT_EQ(other.key, 7u);
}

TEST(SimNetworkTest, TryReceiveEmptyPort) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  EXPECT_FALSE(net.TryReceive(port, &m));
}

TEST(SimNetworkTest, ReceiveBlocksUntilSend) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Message m;
    m.type = MsgType::kReply;
    m.key = 5;
    net.Send(port, m);
  });
  const Message r = net.Receive(port);  // must not return early
  EXPECT_EQ(r.key, 5u);
  sender.join();
}

TEST(SimNetworkTest, JitterReordersDeliveries) {
  SimNetwork net({.delay_ns_min = 0, .delay_ns_max = 3000000, .seed = 9});
  const PortId port = net.CreatePort();
  constexpr int kMsgs = 60;
  for (uint64_t i = 0; i < kMsgs; ++i) {
    Message m;
    m.type = MsgType::kRequest;
    m.key = i;
    net.Send(port, m);
  }
  std::vector<uint64_t> order;
  for (int i = 0; i < kMsgs; ++i) order.push_back(net.Receive(port).key);
  // All delivered exactly once...
  std::vector<uint64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(sorted[i], i);
  // ...but not in send order (with overwhelming probability).
  bool reordered = false;
  for (int i = 1; i < kMsgs; ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(SimNetworkTest, CountsPerType) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  m.type = MsgType::kUpdate;
  net.Send(port, m);
  net.Send(port, m);
  m.type = MsgType::kReply;
  net.Send(port, m);
  const NetworkStats s = net.stats();
  EXPECT_EQ(s.total_sent, 3u);
  EXPECT_EQ(s.per_type[int(MsgType::kUpdate)], 2u);
  EXPECT_EQ(s.per_type[int(MsgType::kReply)], 1u);
  net.ResetStats();
  EXPECT_EQ(net.stats().total_sent, 0u);
}

TEST(SimNetworkTest, TotalQueuedTracksBacklog) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  EXPECT_EQ(net.TotalQueued(), 0u);
  Message m;
  m.type = MsgType::kRequest;
  net.Send(port, m);
  net.Send(port, m);
  EXPECT_EQ(net.TotalQueued(), 2u);
  net.Receive(port);
  EXPECT_EQ(net.TotalQueued(), 1u);
}

TEST(SimNetworkTest, ToStringCoversEveryMsgType) {
  // Keyed to kNumMsgTypes: adding a MsgType without a ToString case (or a
  // duplicate label) fails here, not in a log file.
  std::set<std::string> labels;
  for (int i = 0; i < kNumMsgTypes; ++i) {
    const char* label = ToString(static_cast<MsgType>(i));
    EXPECT_STRNE(label, "?") << "MsgType " << i << " missing from ToString";
    EXPECT_TRUE(labels.insert(label).second)
        << "duplicate ToString label '" << label << "'";
  }
}

TEST(SimNetworkTest, ReceiveForTimesOutAndDelivers) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  Message m;
  EXPECT_FALSE(net.ReceiveFor(port, &m, std::chrono::milliseconds(20)));
  Message sent;
  sent.type = MsgType::kReply;
  sent.key = 11;
  net.Send(port, sent);
  ASSERT_TRUE(net.ReceiveFor(port, &m, std::chrono::milliseconds(20)));
  EXPECT_EQ(m.key, 11u);
}

TEST(SimNetworkTest, DropRuleDiscardsMatchingType) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  net.AddFault(port, FaultRule{MsgMask(MsgType::kRequest), /*drop=*/1.0});
  Message m;
  m.type = MsgType::kRequest;
  for (int i = 0; i < 10; ++i) net.Send(port, m);
  // The mask scopes the rule: replies pass untouched.
  m.type = MsgType::kReply;
  m.key = 3;
  net.Send(port, m);
  Message r;
  ASSERT_TRUE(net.TryReceive(port, &r));
  EXPECT_EQ(r.type, MsgType::kReply);
  EXPECT_FALSE(net.TryReceive(port, &r));
  const NetworkStats s = net.stats();
  EXPECT_EQ(s.dropped, 10u);
  EXPECT_EQ(s.total_sent, 1u);  // only the reply was enqueued
}

TEST(SimNetworkTest, DupRuleDeliversTwice) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  net.AddFault(port,
               FaultRule{MsgMask(MsgType::kOpForward), 0.0, /*dup=*/1.0});
  Message m;
  m.type = MsgType::kOpForward;
  m.key = 8;
  net.Send(port, m);
  Message r;
  ASSERT_TRUE(net.TryReceive(port, &r));
  EXPECT_EQ(r.key, 8u);
  ASSERT_TRUE(net.TryReceive(port, &r));
  EXPECT_EQ(r.key, 8u);
  EXPECT_FALSE(net.TryReceive(port, &r));
  EXPECT_EQ(net.stats().duplicated, 1u);
  EXPECT_EQ(net.stats().total_sent, 2u);
}

TEST(SimNetworkTest, SpikeRuleDelaysDelivery) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  net.AddFault(port, FaultRule{kAllMsgMask, 0.0, 0.0, /*spike_prob=*/1.0,
                               /*spike_ns=*/50'000'000});
  Message m;
  m.type = MsgType::kRequest;
  net.Send(port, m);
  Message r;
  EXPECT_FALSE(net.TryReceive(port, &r));  // not deliverable yet
  EXPECT_FALSE(net.ReceiveFor(port, &r, std::chrono::milliseconds(5)));
  ASSERT_TRUE(net.ReceiveFor(port, &r, std::chrono::milliseconds(500)));
  EXPECT_EQ(net.stats().spiked, 1u);
}

TEST(SimNetworkTest, SeededFaultScheduleIsDeterministic) {
  auto run = [](uint64_t seed) {
    SimNetwork net({.seed = seed});
    const PortId port = net.CreatePort();
    net.AddFault(port, FaultRule{kAllMsgMask, /*drop=*/0.5});
    Message m;
    m.type = MsgType::kRequest;
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      const uint64_t before = net.stats().dropped;
      net.Send(port, m);
      outcomes.push_back(net.stats().dropped == before);
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimNetworkTest, PartitionDropWindowCutsThenHeals) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  net.Partition(port, MsgMask(MsgType::kRequest), std::chrono::seconds(0),
                std::chrono::milliseconds(150), /*drop=*/true);
  Message m;
  m.type = MsgType::kRequest;
  net.Send(port, m);
  Message r;
  EXPECT_FALSE(net.TryReceive(port, &r));
  EXPECT_EQ(net.stats().dropped, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  net.Send(port, m);  // window over: delivery resumes
  ASSERT_TRUE(net.ReceiveFor(port, &r, std::chrono::milliseconds(100)));
}

TEST(SimNetworkTest, PartitionStallWindowHoldsUntilClose) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  net.Partition(port, kAllMsgMask, std::chrono::seconds(0),
                std::chrono::milliseconds(120), /*drop=*/false);
  Message m;
  m.type = MsgType::kUpdate;
  net.Send(port, m);
  Message r;
  EXPECT_FALSE(net.ReceiveFor(port, &r, std::chrono::milliseconds(10)));
  ASSERT_TRUE(net.ReceiveFor(port, &r, std::chrono::milliseconds(1000)));
  EXPECT_EQ(r.type, MsgType::kUpdate);
  EXPECT_EQ(net.stats().stalled, 1u);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(SimNetworkTest, ClearAllFaultsRestoresReliability) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  net.AddFault(port, FaultRule{kAllMsgMask, /*drop=*/1.0});
  net.Partition(port, kAllMsgMask, std::chrono::seconds(0),
                std::chrono::seconds(10), /*drop=*/true);
  Message m;
  m.type = MsgType::kRequest;
  net.Send(port, m);
  Message r;
  EXPECT_FALSE(net.TryReceive(port, &r));
  net.ClearAllFaults();
  net.Send(port, m);
  ASSERT_TRUE(net.TryReceive(port, &r));
}

TEST(SimNetworkTest, QuiescenceProbeReportsEarliestDelivery) {
  SimNetwork net({.delay_ns_min = 60'000'000, .delay_ns_max = 60'000'000});
  const PortId port = net.CreatePort();
  Message m;
  m.type = MsgType::kUpdate;
  const auto before = std::chrono::steady_clock::now();
  net.Send(port, m);
  std::chrono::steady_clock::time_point earliest{};
  EXPECT_EQ(net.QueuedForQuiescence(&earliest), 1u);
  // The in-flight message is due ~60 ms out; a delay-aware waiter can sleep
  // until then instead of polling past it.
  EXPECT_GT(earliest, before + std::chrono::milliseconds(30));
  EXPECT_EQ(net.TotalQueued(), 1u);
}

TEST(SimNetworkTest, ClientPortsExcludedFromQuiescenceProbe) {
  SimNetwork net;
  const PortId counted = net.CreatePort();
  const PortId client = net.CreateClientPort();
  Message m;
  m.type = MsgType::kReply;
  net.Send(client, m);
  // A stale reply abandoned in a client port must not look like work.
  EXPECT_EQ(net.QueuedForQuiescence(nullptr), 0u);
  EXPECT_EQ(net.TotalQueued(), 1u);
  m.type = MsgType::kUpdate;
  net.Send(counted, m);
  EXPECT_EQ(net.QueuedForQuiescence(nullptr), 1u);
  EXPECT_EQ(net.TotalQueued(), 2u);
}

TEST(SimNetworkTest, ManyProducersOneConsumer) {
  SimNetwork net;
  const PortId port = net.CreatePort();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Message m;
        m.type = MsgType::kRequest;
        m.key = uint64_t(t) * kPerThread + i;
        net.Send(port, m);
      }
    });
  }
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    const Message r = net.Receive(port);
    ASSERT_LT(r.key, seen.size());
    ASSERT_FALSE(seen[r.key]);
    seen[r.key] = true;
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace exhash::dist
