#include "workload/ycsb.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/bits.h"
#include "util/pseudokey.h"
#include "workload/latency.h"
#include "workload/runner.h"

namespace exhash::workload {
namespace {

const std::vector<YcsbWorkload> kAllWorkloads = {
    YcsbWorkload::kA, YcsbWorkload::kB,    YcsbWorkload::kC,    YcsbWorkload::kD,
    YcsbWorkload::kF, YcsbWorkload::kScan, YcsbWorkload::kStorm};

YcsbOptions SmallOptions(YcsbWorkload wl, uint64_t seed = 42) {
  YcsbOptions o;
  o.workload = wl;
  o.record_count = 2000;
  o.d_preload = 500;
  o.seed = seed;
  return o;
}

// Serializes a generator's next `n` ops to one string — byte-identical
// streams are the determinism contract (same seed => same bytes, across
// runs and regardless of how many other threads the run uses).
std::string Serialize(const YcsbOptions& options, int thread_id, int n) {
  YcsbGenerator gen(options, thread_id);
  std::ostringstream out;
  for (int i = 0; i < n; ++i) {
    const YcsbOp op = gen.Next();
    out << int(op.type) << ':' << op.key << ':' << op.value_size << ':'
        << op.scan_len << '\n';
  }
  return out.str();
}

TEST(YcsbGeneratorTest, SameSeedSameThreadByteIdenticalStreams) {
  for (YcsbWorkload wl : kAllWorkloads) {
    for (int thread = 0; thread < 3; ++thread) {
      const YcsbOptions o = SmallOptions(wl);
      EXPECT_EQ(Serialize(o, thread, 500), Serialize(o, thread, 500))
          << "workload " << ToString(wl) << " thread " << thread;
    }
  }
}

TEST(YcsbGeneratorTest, DifferentSeedsDifferentStreams) {
  for (YcsbWorkload wl : kAllWorkloads) {
    EXPECT_NE(Serialize(SmallOptions(wl, 1), 0, 500),
              Serialize(SmallOptions(wl, 2), 0, 500))
        << "workload " << ToString(wl);
  }
}

TEST(YcsbGeneratorTest, DifferentThreadsDifferentStreams) {
  for (YcsbWorkload wl : kAllWorkloads) {
    const YcsbOptions o = SmallOptions(wl);
    EXPECT_NE(Serialize(o, 0, 500), Serialize(o, 1, 500))
        << "workload " << ToString(wl);
  }
}

TEST(YcsbGeneratorTest, MixRatiosRespected) {
  constexpr int kOps = 30000;
  for (YcsbWorkload wl :
       {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC, YcsbWorkload::kD,
        YcsbWorkload::kF, YcsbWorkload::kScan}) {
    YcsbGenerator gen(SmallOptions(wl), 0);
    int counts[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < kOps; ++i) ++counts[int(gen.Next().type)];
    const YcsbMix mix = MixFor(wl);
    EXPECT_NEAR(double(counts[int(YcsbOp::Type::kRead)]) / kOps,
                mix.read_pct / 100.0, 0.02)
        << ToString(wl);
    EXPECT_NEAR(double(counts[int(YcsbOp::Type::kUpdate)]) / kOps,
                mix.update_pct / 100.0, 0.02)
        << ToString(wl);
    EXPECT_NEAR(double(counts[int(YcsbOp::Type::kInsert)]) / kOps,
                mix.insert_pct / 100.0, 0.02)
        << ToString(wl);
    EXPECT_NEAR(double(counts[int(YcsbOp::Type::kRmw)]) / kOps,
                mix.rmw_pct / 100.0, 0.02)
        << ToString(wl);
    EXPECT_NEAR(double(counts[int(YcsbOp::Type::kScan)]) / kOps,
                mix.scan_pct / 100.0, 0.02)
        << ToString(wl);
  }
}

TEST(YcsbGeneratorTest, MixPercentagesSumTo100) {
  for (YcsbWorkload wl : kAllWorkloads) {
    const YcsbMix m = MixFor(wl);
    EXPECT_EQ(m.read_pct + m.update_pct + m.insert_pct + m.rmw_pct +
                  m.scan_pct + m.remove_pct,
              100)
        << ToString(wl);
  }
}

TEST(YcsbGeneratorTest, ValueSizeAndScanLenStayInBounds) {
  for (YcsbWorkload wl : kAllWorkloads) {
    YcsbOptions o = SmallOptions(wl);
    o.value_size_min = 16;
    o.value_size_max = 64;
    o.scan_len_min = 5;
    o.scan_len_max = 9;
    YcsbGenerator gen(o, 0);
    for (int i = 0; i < 2000; ++i) {
      const YcsbOp op = gen.Next();
      EXPECT_GE(op.value_size, 16u);
      EXPECT_LE(op.value_size, 64u);
      if (op.type == YcsbOp::Type::kScan) {
        EXPECT_GE(op.scan_len, 5u);
        EXPECT_LE(op.scan_len, 9u);
      } else {
        EXPECT_EQ(op.scan_len, 0u);
      }
    }
  }
}

TEST(YcsbGeneratorTest, ZipfWorkloadsDrawFromPreloadUniverse) {
  for (YcsbWorkload wl : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                          YcsbWorkload::kF, YcsbWorkload::kScan}) {
    YcsbGenerator gen(SmallOptions(wl), 0);
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(gen.Next().key, 2000u) << ToString(wl);
    }
  }
}

TEST(YcsbGeneratorTest, ZipfSkewsTowardLowKeys) {
  YcsbGenerator gen(SmallOptions(YcsbWorkload::kC), 0);
  int hot = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    if (gen.Next().key < 20) ++hot;  // top 1% of the 2000-key universe
  }
  EXPECT_GT(hot, kOps / 4);
}

// --- workload D: latest distribution ---

TEST(YcsbGeneratorTest, LatestReadsStayInThreadRegionAndSkewRecent) {
  const YcsbOptions o = SmallOptions(YcsbWorkload::kD);
  const int thread = 2;
  YcsbGenerator gen(o, thread);
  uint64_t frontier = o.d_preload;  // keys [0, frontier) of the region exist
  int recent = 0;
  int reads = 0;
  for (int i = 0; i < 20000; ++i) {
    const YcsbOp op = gen.Next();
    if (op.type == YcsbOp::Type::kInsert) {
      EXPECT_EQ(op.key, YcsbGenerator::LatestKey(thread, frontier));
      ++frontier;
      continue;
    }
    ASSERT_EQ(int(op.type), int(YcsbOp::Type::kRead));
    ++reads;
    // Reads target this thread's region, below its insert frontier.
    EXPECT_GE(op.key, YcsbGenerator::LatestKey(thread, 0));
    EXPECT_LT(op.key, YcsbGenerator::LatestKey(thread, frontier));
    // "Latest" skew: most reads land in the newest 10% of the region.
    if (op.key >= YcsbGenerator::LatestKey(thread, frontier - frontier / 10)) {
      ++recent;
    }
  }
  EXPECT_GT(recent, reads / 2);
}

TEST(YcsbGeneratorTest, LatestKeyRegionsAreDisjointAcrossThreads) {
  // Region t spans [ (t+1)<<40, (t+2)<<40 ): adjacent regions cannot
  // overlap for any realistic i, and region 0 stays clear of the
  // preload universe [0, record_count).
  EXPECT_GT(YcsbGenerator::LatestKey(0, 0), uint64_t{1} << 39);
  for (int t = 0; t < 8; ++t) {
    EXPECT_LT(YcsbGenerator::LatestKey(t, uint64_t{1} << 39),
              YcsbGenerator::LatestKey(t + 1, 0));
  }
}

// --- the storm ---

TEST(YcsbGeneratorTest, StormHotKeysCollideBelowCollideBits) {
  YcsbOptions o = SmallOptions(YcsbWorkload::kStorm);
  util::Mix64Hasher hasher;
  const uint64_t shared =
      util::LowBits(hasher.Hash(YcsbGenerator::StormHotKey(o, 0)),
                    o.storm_collide_bits);
  std::set<uint64_t> keys;
  std::set<uint64_t> pseudokeys;
  for (uint32_t i = 0; i < o.storm_hot_keys; ++i) {
    const uint64_t key = YcsbGenerator::StormHotKey(o, i);
    keys.insert(key);
    pseudokeys.insert(hasher.Hash(key));
    // All hot pseudokeys share their low collide_bits bits (one bucket
    // subtree at any depth <= collide_bits)...
    EXPECT_EQ(util::LowBits(hasher.Hash(key), o.storm_collide_bits), shared);
  }
  // ...while both keys and pseudokeys stay distinct (mitigation can
  // separate them past collide_bits).
  EXPECT_EQ(keys.size(), o.storm_hot_keys);
  EXPECT_EQ(pseudokeys.size(), o.storm_hot_keys);
}

TEST(YcsbGeneratorTest, StormTrafficConcentratesOnHotSet) {
  YcsbOptions o = SmallOptions(YcsbWorkload::kStorm);
  std::set<uint64_t> hot;
  for (uint32_t i = 0; i < o.storm_hot_keys; ++i) {
    hot.insert(YcsbGenerator::StormHotKey(o, i));
  }
  YcsbGenerator gen(o, 0);
  int on_hot = 0;
  int cold_writes = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    const YcsbOp op = gen.Next();
    if (hot.count(op.key) != 0) {
      ++on_hot;
    } else {
      EXPECT_LT(op.key, o.record_count);  // cold = preload universe
      if (op.type != YcsbOp::Type::kRead) ++cold_writes;
    }
  }
  EXPECT_NEAR(double(on_hot) / kOps, o.storm_hot_pct / 100.0, 0.02);
  EXPECT_EQ(cold_writes, 0);  // cold traffic is read-only
}

// --- the latency recorder ---

TEST(LatencyRecorderTest, ExactBelowSubBucketRange) {
  LatencyRecorder r;
  for (uint64_t v = 0; v < 32; ++v) r.Record(v);
  EXPECT_EQ(r.count(), 32u);
  EXPECT_EQ(r.max(), 31u);
  EXPECT_EQ(r.Percentile(100), 31u);
  EXPECT_EQ(r.Percentile(50), 15u);
}

TEST(LatencyRecorderTest, PercentileWithinRelativeErrorBound) {
  LatencyRecorder r;
  for (uint64_t v = 1; v <= 100000; ++v) r.Record(v);
  // Log-linear with 32 sub-buckets: relative error <= 1/32 (~3%), plus
  // one bucket of slack for the midpoint convention.
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = p / 100.0 * 100000.0;
    const double got = double(r.Percentile(p));
    EXPECT_NEAR(got, exact, exact * 0.07) << "p" << p;
  }
}

TEST(LatencyRecorderTest, MergeMatchesCombinedRecording) {
  LatencyRecorder a;
  LatencyRecorder b;
  LatencyRecorder combined;
  for (uint64_t v = 0; v < 1000; ++v) {
    ((v % 2 == 0) ? a : b).Record(v * 17);
    combined.Record(v * 17);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.Mean(), combined.Mean());
  for (double p : {10.0, 50.0, 99.0}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(LatencyRecorderTest, EmptyAndReset) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.Percentile(99), 0u);
  EXPECT_EQ(r.Mean(), 0.0);
  r.Record(12345);
  EXPECT_EQ(r.count(), 1u);
  r.Reset();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.max(), 0u);
  EXPECT_EQ(r.Percentile(99), 0u);
}

TEST(LatencyRecorderTest, PercentileNeverExceedsObservedMax) {
  LatencyRecorder r;
  r.Record(1000000007);  // lands mid-bucket; the estimate must clamp
  EXPECT_EQ(r.Percentile(99.9), 1000000007u);
}

// --- payload function ---

TEST(PayloadValueTest, PureFunctionOfKeyAndSize) {
  EXPECT_EQ(PayloadValue(7, 64), PayloadValue(7, 64));
  EXPECT_NE(PayloadValue(7, 64), PayloadValue(8, 64));
  EXPECT_NE(PayloadValue(7, 64), PayloadValue(7, 128));
}

TEST(YcsbGeneratorTest, ToStringNames) {
  EXPECT_STREQ(ToString(YcsbWorkload::kA), "A");
  EXPECT_STREQ(ToString(YcsbWorkload::kB), "B");
  EXPECT_STREQ(ToString(YcsbWorkload::kC), "C");
  EXPECT_STREQ(ToString(YcsbWorkload::kD), "D");
  EXPECT_STREQ(ToString(YcsbWorkload::kF), "F");
  EXPECT_STREQ(ToString(YcsbWorkload::kScan), "scan");
  EXPECT_STREQ(ToString(YcsbWorkload::kStorm), "storm");
}

}  // namespace
}  // namespace exhash::workload
