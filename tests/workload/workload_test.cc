#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "util/bits.h"
#include "util/pseudokey.h"

namespace exhash::workload {
namespace {

TEST(WorkloadTest, MixRatiosRespected) {
  WorkloadGenerator gen({.key_space = 1000,
                         .dist = KeyDist::kUniform,
                         .mix = {50, 30, 20},
                         .seed = 1},
                        0);
  int finds = 0;
  int inserts = 0;
  int removes = 0;
  constexpr int kOps = 30000;
  for (int i = 0; i < kOps; ++i) {
    switch (gen.Next().type) {
      case Op::Type::kFind:
        ++finds;
        break;
      case Op::Type::kInsert:
        ++inserts;
        break;
      case Op::Type::kRemove:
        ++removes;
        break;
    }
  }
  EXPECT_NEAR(double(finds) / kOps, 0.50, 0.02);
  EXPECT_NEAR(double(inserts) / kOps, 0.30, 0.02);
  EXPECT_NEAR(double(removes) / kOps, 0.20, 0.02);
}

TEST(WorkloadTest, UniformKeysStayInKeySpace) {
  WorkloadGenerator gen({.key_space = 77,
                         .dist = KeyDist::kUniform,
                         .mix = {100, 0, 0},
                         .seed = 2},
                        0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(gen.NextKey(), 77u);
  }
}

TEST(WorkloadTest, SequentialKeysIncreaseAndPartitionByThread) {
  WorkloadGenerator a({.key_space = 1000,
                       .dist = KeyDist::kSequential,
                       .mix = {100, 0, 0},
                       .seed = 3},
                      0);
  WorkloadGenerator b({.key_space = 1000,
                       .dist = KeyDist::kSequential,
                       .mix = {100, 0, 0},
                       .seed = 3},
                      1);
  uint64_t prev = a.NextKey();
  for (int i = 0; i < 100; ++i) {
    const uint64_t k = a.NextKey();
    EXPECT_EQ(k, prev + 1);
    prev = k;
  }
  // Thread 1 starts in its own region.
  EXPECT_GE(b.NextKey(), 1000u);
}

TEST(WorkloadTest, CollidingKeysSharePseudokeyLowBits) {
  WorkloadGenerator gen({.key_space = 4096,
                         .dist = KeyDist::kColliding,
                         .mix = {100, 0, 0},
                         .seed = 4},
                        0);
  util::Mix64Hasher hasher;
  std::set<uint64_t> distinct_keys;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = gen.NextKey();
    distinct_keys.insert(key);
    EXPECT_EQ(util::LowBits(hasher.Hash(key), 3), 0b101u);
  }
  // The keys themselves are still diverse — it is the pseudokeys that
  // collide.
  EXPECT_GT(distinct_keys.size(), 1000u);
}

TEST(WorkloadTest, DeterministicPerSeedAndThread) {
  for (int thread = 0; thread < 3; ++thread) {
    WorkloadGenerator a({.key_space = 500,
                         .dist = KeyDist::kZipf,
                         .mix = {60, 20, 20},
                         .seed = 9},
                        thread);
    WorkloadGenerator b({.key_space = 500,
                         .dist = KeyDist::kZipf,
                         .mix = {60, 20, 20},
                         .seed = 9},
                        thread);
    for (int i = 0; i < 200; ++i) {
      const Op x = a.Next();
      const Op y = b.Next();
      EXPECT_EQ(x.key, y.key);
      EXPECT_EQ(int(x.type), int(y.type));
    }
  }
}

TEST(WorkloadTest, DifferentThreadsDifferentStreams) {
  WorkloadGenerator a({.key_space = 1u << 20,
                       .dist = KeyDist::kUniform,
                       .mix = {100, 0, 0},
                       .seed = 9},
                      0);
  WorkloadGenerator b({.key_space = 1u << 20,
                       .dist = KeyDist::kUniform,
                       .mix = {100, 0, 0},
                       .seed = 9},
                      1);
  int same = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.NextKey() == b.NextKey()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(WorkloadTest, ZipfSkewsTraffic) {
  WorkloadGenerator gen({.key_space = 10000,
                         .dist = KeyDist::kZipf,
                         .zipf_theta = 0.99,
                         .mix = {100, 0, 0},
                         .seed = 10},
                        0);
  int hot = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    if (gen.NextKey() < 100) ++hot;
  }
  EXPECT_GT(hot, kOps / 4);  // top 1% of keys draw >25% of traffic
}

TEST(WorkloadTest, ToStringNames) {
  EXPECT_STREQ(ToString(KeyDist::kUniform), "uniform");
  EXPECT_STREQ(ToString(KeyDist::kZipf), "zipf");
  EXPECT_STREQ(ToString(KeyDist::kSequential), "sequential");
  EXPECT_STREQ(ToString(KeyDist::kColliding), "colliding");
}

}  // namespace
}  // namespace exhash::workload
