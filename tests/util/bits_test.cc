#include "util/bits.h"

#include <gtest/gtest.h>

namespace exhash::util {
namespace {

TEST(BitsTest, MaskSelectsLowBits) {
  EXPECT_EQ(Mask(0), 0u);
  EXPECT_EQ(Mask(1), 0b1u);
  EXPECT_EQ(Mask(3), 0b111u);
  EXPECT_EQ(Mask(63), ~uint64_t{0} >> 1);
  EXPECT_EQ(Mask(64), ~uint64_t{0});
}

TEST(BitsTest, LowBits) {
  EXPECT_EQ(LowBits(0b101101, 3), 0b101u);
  EXPECT_EQ(LowBits(0b101101, 0), 0u);
  EXPECT_EQ(LowBits(~uint64_t{0}, 64), ~uint64_t{0});
}

TEST(BitsTest, PartnerBitsFlipsExactlyTheLocaldepthBit) {
  // Partners w.r.t. bit d agree in bits d-1..1 and differ at bit d.
  EXPECT_EQ(PartnerBits(0b000, 1), 0b001u);
  EXPECT_EQ(PartnerBits(0b001, 1), 0b000u);
  EXPECT_EQ(PartnerBits(0b010, 2), 0b000u);
  EXPECT_EQ(PartnerBits(0b101, 3), 0b001u);
}

TEST(BitsTest, PartnerIsAnInvolution) {
  for (int depth = 1; depth <= 16; ++depth) {
    for (uint64_t v = 0; v < 64; ++v) {
      const Pseudokey c = LowBits(v * 0x9e3779b9u, depth);
      EXPECT_EQ(PartnerBits(PartnerBits(c, depth), depth), c);
    }
  }
}

TEST(BitsTest, IsOnePartnerChecksBitLocaldepth) {
  // Bit numbering is 1-based from the LSB, as in the paper.
  EXPECT_FALSE(IsOnePartner(0b100, 1));
  EXPECT_TRUE(IsOnePartner(0b101, 1));
  EXPECT_FALSE(IsOnePartner(0b101, 2));
  EXPECT_TRUE(IsOnePartner(0b101, 3));
}

TEST(BitsTest, MatchesCommonBits) {
  // Pseudokey ...10110 belongs in the bucket with commonbits 110 at
  // localdepth 3.
  EXPECT_TRUE(MatchesCommonBits(0b10110, 0b110, 3));
  EXPECT_FALSE(MatchesCommonBits(0b10110, 0b010, 3));
  EXPECT_TRUE(MatchesCommonBits(0xdeadbeef, 0, 0));  // depth 0 matches all
}

TEST(BitsTest, ReverseLowBits) {
  EXPECT_EQ(ReverseLowBits(0b001, 3), 0b100u);
  EXPECT_EQ(ReverseLowBits(0b110, 3), 0b011u);
  EXPECT_EQ(ReverseLowBits(0b1, 1), 0b1u);
  EXPECT_EQ(ReverseLowBits(0, 0), 0u);
}

TEST(BitsTest, ReverseIsAnInvolution) {
  for (int bits = 0; bits <= 20; ++bits) {
    for (uint64_t v = 0; v < 256; ++v) {
      const uint64_t x = LowBits(v * 2654435761u, bits);
      EXPECT_EQ(ReverseLowBits(ReverseLowBits(x, bits), bits), x);
    }
  }
}

// --- depth edges: 0 and the full 64-bit width ---
//
// Depth 0 is a real state (a directory of one entry before any doubling)
// and depth 64 is the representable maximum; both ends exercise the
// shift-width corners where naive `1 << depth` code is undefined.

TEST(BitsTest, DepthZeroEdges) {
  EXPECT_EQ(Mask(0), 0u);
  EXPECT_EQ(LowBits(~uint64_t{0}, 0), 0u);
  // Every pseudokey matches the depth-0 bucket.
  EXPECT_TRUE(MatchesCommonBits(0, 0, 0));
  EXPECT_TRUE(MatchesCommonBits(~uint64_t{0}, 0, 0));
  EXPECT_EQ(ChainRank(0, 0), 0u);
  EXPECT_EQ(ReverseLowBits(~uint64_t{0}, 0), 0u);
}

TEST(BitsTest, Depth64Edges) {
  EXPECT_EQ(Mask(64), ~uint64_t{0});
  EXPECT_EQ(LowBits(0x123456789abcdef0u, 64), 0x123456789abcdef0u);
  // Partner at localdepth 64 flips the MSB.
  EXPECT_EQ(PartnerBits(0, 64), uint64_t{1} << 63);
  EXPECT_EQ(PartnerBits(uint64_t{1} << 63, 64), 0u);
  EXPECT_TRUE(IsOnePartner(uint64_t{1} << 63, 64));
  EXPECT_FALSE(IsOnePartner(~(uint64_t{1} << 63), 64));
  // Full-width reversal is still an involution and maps LSB <-> MSB.
  EXPECT_EQ(ReverseLowBits(1, 64), uint64_t{1} << 63);
  EXPECT_EQ(ReverseLowBits(uint64_t{1} << 63, 64), 1u);
  const uint64_t v = 0xdeadbeefcafef00du;
  EXPECT_EQ(ReverseLowBits(ReverseLowBits(v, 64), 64), v);
  // ChainRank at localdepth 64 is the bare reversal (shift by 0).
  EXPECT_EQ(ChainRank(v, 64), ReverseLowBits(v, 64));
}

TEST(BitsTest, MatchesCommonBitsAtFullDepth) {
  const uint64_t pk = 0x0123456789abcdefu;
  EXPECT_TRUE(MatchesCommonBits(pk, pk, 64));
  EXPECT_FALSE(MatchesCommonBits(pk, pk ^ 1, 64));
  EXPECT_FALSE(MatchesCommonBits(pk, pk ^ (uint64_t{1} << 63), 64));
}

TEST(BitsTest, MaskGrowsByOneBitPerDepth) {
  for (int depth = 1; depth <= 64; ++depth) {
    EXPECT_EQ(Mask(depth) ^ Mask(depth - 1), uint64_t{1} << (depth - 1))
        << "depth=" << depth;
  }
}

TEST(BitsTest, ChainRankOrdersSplitsCorrectly) {
  // After splitting bucket <> into <0>,<1> and then <0> into <00>,<10>,
  // the chain must run 00, 10, 1 — i.e. ranks strictly increase.
  const uint64_t r00 = ChainRank(0b00, 2);
  const uint64_t r10 = ChainRank(0b10, 2);
  const uint64_t r1 = ChainRank(0b1, 1);
  EXPECT_LT(r00, r10);
  EXPECT_LT(r10, r1);
  // A "0" partner always ranks below its "1" partner.
  for (int ld = 1; ld <= 10; ++ld) {
    for (uint64_t v = 0; v < 64; ++v) {
      const Pseudokey zero = LowBits(v, ld) & ~(Pseudokey{1} << (ld - 1));
      const Pseudokey one = zero | (Pseudokey{1} << (ld - 1));
      EXPECT_LT(ChainRank(zero, ld), ChainRank(one, ld));
    }
  }
}

}  // namespace
}  // namespace exhash::util
