#include "util/bits.h"

#include <gtest/gtest.h>

namespace exhash::util {
namespace {

TEST(BitsTest, MaskSelectsLowBits) {
  EXPECT_EQ(Mask(0), 0u);
  EXPECT_EQ(Mask(1), 0b1u);
  EXPECT_EQ(Mask(3), 0b111u);
  EXPECT_EQ(Mask(63), ~uint64_t{0} >> 1);
  EXPECT_EQ(Mask(64), ~uint64_t{0});
}

TEST(BitsTest, LowBits) {
  EXPECT_EQ(LowBits(0b101101, 3), 0b101u);
  EXPECT_EQ(LowBits(0b101101, 0), 0u);
  EXPECT_EQ(LowBits(~uint64_t{0}, 64), ~uint64_t{0});
}

TEST(BitsTest, PartnerBitsFlipsExactlyTheLocaldepthBit) {
  // Partners w.r.t. bit d agree in bits d-1..1 and differ at bit d.
  EXPECT_EQ(PartnerBits(0b000, 1), 0b001u);
  EXPECT_EQ(PartnerBits(0b001, 1), 0b000u);
  EXPECT_EQ(PartnerBits(0b010, 2), 0b000u);
  EXPECT_EQ(PartnerBits(0b101, 3), 0b001u);
}

TEST(BitsTest, PartnerIsAnInvolution) {
  for (int depth = 1; depth <= 16; ++depth) {
    for (uint64_t v = 0; v < 64; ++v) {
      const Pseudokey c = LowBits(v * 0x9e3779b9u, depth);
      EXPECT_EQ(PartnerBits(PartnerBits(c, depth), depth), c);
    }
  }
}

TEST(BitsTest, IsOnePartnerChecksBitLocaldepth) {
  // Bit numbering is 1-based from the LSB, as in the paper.
  EXPECT_FALSE(IsOnePartner(0b100, 1));
  EXPECT_TRUE(IsOnePartner(0b101, 1));
  EXPECT_FALSE(IsOnePartner(0b101, 2));
  EXPECT_TRUE(IsOnePartner(0b101, 3));
}

TEST(BitsTest, MatchesCommonBits) {
  // Pseudokey ...10110 belongs in the bucket with commonbits 110 at
  // localdepth 3.
  EXPECT_TRUE(MatchesCommonBits(0b10110, 0b110, 3));
  EXPECT_FALSE(MatchesCommonBits(0b10110, 0b010, 3));
  EXPECT_TRUE(MatchesCommonBits(0xdeadbeef, 0, 0));  // depth 0 matches all
}

TEST(BitsTest, ReverseLowBits) {
  EXPECT_EQ(ReverseLowBits(0b001, 3), 0b100u);
  EXPECT_EQ(ReverseLowBits(0b110, 3), 0b011u);
  EXPECT_EQ(ReverseLowBits(0b1, 1), 0b1u);
  EXPECT_EQ(ReverseLowBits(0, 0), 0u);
}

TEST(BitsTest, ReverseIsAnInvolution) {
  for (int bits = 0; bits <= 20; ++bits) {
    for (uint64_t v = 0; v < 256; ++v) {
      const uint64_t x = LowBits(v * 2654435761u, bits);
      EXPECT_EQ(ReverseLowBits(ReverseLowBits(x, bits), bits), x);
    }
  }
}

TEST(BitsTest, ChainRankOrdersSplitsCorrectly) {
  // After splitting bucket <> into <0>,<1> and then <0> into <00>,<10>,
  // the chain must run 00, 10, 1 — i.e. ranks strictly increase.
  const uint64_t r00 = ChainRank(0b00, 2);
  const uint64_t r10 = ChainRank(0b10, 2);
  const uint64_t r1 = ChainRank(0b1, 1);
  EXPECT_LT(r00, r10);
  EXPECT_LT(r10, r1);
  // A "0" partner always ranks below its "1" partner.
  for (int ld = 1; ld <= 10; ++ld) {
    for (uint64_t v = 0; v < 64; ++v) {
      const Pseudokey zero = LowBits(v, ld) & ~(Pseudokey{1} << (ld - 1));
      const Pseudokey one = zero | (Pseudokey{1} << (ld - 1));
      EXPECT_LT(ChainRank(zero, ld), ChainRank(one, ld));
    }
  }
}

}  // namespace
}  // namespace exhash::util
