#include "util/pseudokey.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/bits.h"
#include "util/random.h"

namespace exhash::util {
namespace {

TEST(PseudokeyTest, MixIsDeterministic) {
  Mix64Hasher h;
  EXPECT_EQ(h.Hash(42), h.Hash(42));
  EXPECT_NE(h.Hash(42), h.Hash(43));
}

TEST(PseudokeyTest, UnmixInvertsMix) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.Next();
    EXPECT_EQ(Mix64Hasher::Mix(Mix64Hasher::Unmix(x)), x);
    EXPECT_EQ(Mix64Hasher::Unmix(Mix64Hasher::Mix(x)), x);
  }
  // Edge values.
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
    EXPECT_EQ(Mix64Hasher::Mix(Mix64Hasher::Unmix(x)), x);
  }
}

TEST(PseudokeyTest, LowBitsAreWellDistributed) {
  // The directory indexes by low bits; sequential keys must spread evenly.
  constexpr int kBits = 6;
  constexpr int kBuckets = 1 << kBits;
  constexpr int kSamples = 64000;
  std::vector<int> counts(kBuckets, 0);
  Mix64Hasher h;
  for (uint64_t k = 0; k < kSamples; ++k) {
    ++counts[LowBits(h.Hash(k), kBits)];
  }
  const double expected = double(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.7);
    EXPECT_LT(c, expected * 1.3);
  }
}

TEST(PseudokeyTest, IdentityHasherPassesKeysThrough) {
  IdentityHasher h;
  EXPECT_EQ(h.Hash(0b1011), 0b1011u);
  EXPECT_EQ(h.Hash(0), 0u);
}

TEST(PseudokeyTest, VirtualDispatchMatchesStatic) {
  Mix64Hasher h;
  const Hasher& base = h;
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(base.Hash(k), Mix64Hasher::Mix(k));
  }
}

}  // namespace
}  // namespace exhash::util
