#include "util/pseudokey.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/bits.h"
#include "util/random.h"

namespace exhash::util {
namespace {

TEST(PseudokeyTest, MixIsDeterministic) {
  Mix64Hasher h;
  EXPECT_EQ(h.Hash(42), h.Hash(42));
  EXPECT_NE(h.Hash(42), h.Hash(43));
}

TEST(PseudokeyTest, UnmixInvertsMix) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.Next();
    EXPECT_EQ(Mix64Hasher::Mix(Mix64Hasher::Unmix(x)), x);
    EXPECT_EQ(Mix64Hasher::Unmix(Mix64Hasher::Mix(x)), x);
  }
  // Edge values.
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
    EXPECT_EQ(Mix64Hasher::Mix(Mix64Hasher::Unmix(x)), x);
  }
}

TEST(PseudokeyTest, LowBitsAreWellDistributed) {
  // The directory indexes by low bits; sequential keys must spread evenly.
  constexpr int kBits = 6;
  constexpr int kBuckets = 1 << kBits;
  constexpr int kSamples = 64000;
  std::vector<int> counts(kBuckets, 0);
  Mix64Hasher h;
  for (uint64_t k = 0; k < kSamples; ++k) {
    ++counts[LowBits(h.Hash(k), kBits)];
  }
  const double expected = double(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.7);
    EXPECT_LT(c, expected * 1.3);
  }
}

TEST(PseudokeyTest, IdentityHasherPassesKeysThrough) {
  IdentityHasher h;
  EXPECT_EQ(h.Hash(0b1011), 0b1011u);
  EXPECT_EQ(h.Hash(0), 0u);
}

TEST(PseudokeyTest, VirtualDispatchMatchesStatic) {
  Mix64Hasher h;
  const Hasher& base = h;
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(base.Hash(k), Mix64Hasher::Mix(k));
  }
}

TEST(PseudokeyTest, AvalancheOnSingleBitFlips) {
  // Splits key on successive bits of the pseudokey, so flipping one input
  // bit must scramble roughly half the output bits — a weak mixer would
  // funnel sequential keys into sibling buckets forever.
  Rng rng(21);
  double total_flipped = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t key = rng.Next();
    const int bit = int(rng.Uniform(64));
    const uint64_t diff =
        Mix64Hasher::Mix(key) ^ Mix64Hasher::Mix(key ^ (uint64_t{1} << bit));
    total_flipped += __builtin_popcountll(diff);
  }
  const double mean_flipped = total_flipped / kTrials;
  EXPECT_GT(mean_flipped, 24.0);
  EXPECT_LT(mean_flipped, 40.0);
}

TEST(PseudokeyTest, EveryLowBitIsUnbiased) {
  // Each directory-indexing bit individually must be ~50/50 over
  // sequential keys (the distribution test above checks joint spread; this
  // one catches a single stuck bit).
  constexpr int kSamples = 20000;
  Mix64Hasher h;
  for (int bit = 0; bit < 16; ++bit) {
    int ones = 0;
    for (uint64_t k = 0; k < kSamples; ++k) {
      ones += int((h.Hash(k) >> bit) & 1);
    }
    EXPECT_GT(ones, kSamples * 45 / 100) << "bit " << bit;
    EXPECT_LT(ones, kSamples * 55 / 100) << "bit " << bit;
  }
}

TEST(PseudokeyTest, DeterministicAcrossInstances) {
  // The pseudokey function is part of the on-disk/wire contract: two
  // hasher instances (e.g. different cluster nodes) must agree exactly.
  Mix64Hasher a;
  Mix64Hasher b;
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next();
    EXPECT_EQ(a.Hash(k), b.Hash(k));
  }
}

}  // namespace
}  // namespace exhash::util
