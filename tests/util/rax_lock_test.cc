#include "util/rax_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/random.h"

namespace exhash::util {
namespace {

using std::chrono::milliseconds;

// --- The compatibility table of section 2.1, verified literally ---

struct CompatCase {
  LockMode held;
  LockMode requested;
  bool compatible;
};

class CompatibilityTest : public ::testing::TestWithParam<CompatCase> {};

TEST_P(CompatibilityTest, TryLockMatchesPaperTable) {
  const CompatCase c = GetParam();
  RaxLock lock;
  lock.Lock(c.held);
  EXPECT_EQ(lock.TryLock(c.requested), c.compatible);
  if (c.compatible) lock.Unlock(c.requested);
  lock.Unlock(c.held);
  // Afterwards the lock is free again.
  EXPECT_TRUE(lock.TryLock(LockMode::kXi));
  lock.Unlock(LockMode::kXi);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, CompatibilityTest,
    ::testing::Values(
        // rho request vs existing rho/alpha/xi: yes / yes / no.
        CompatCase{LockMode::kRho, LockMode::kRho, true},
        CompatCase{LockMode::kAlpha, LockMode::kRho, true},
        CompatCase{LockMode::kXi, LockMode::kRho, false},
        // alpha request: yes / no / no.
        CompatCase{LockMode::kRho, LockMode::kAlpha, true},
        CompatCase{LockMode::kAlpha, LockMode::kAlpha, false},
        CompatCase{LockMode::kXi, LockMode::kAlpha, false},
        // xi request: no / no / no.
        CompatCase{LockMode::kRho, LockMode::kXi, false},
        CompatCase{LockMode::kAlpha, LockMode::kXi, false},
        CompatCase{LockMode::kXi, LockMode::kXi, false}));

TEST(RaxLockTest, CompatibleConstexprMatchesTable) {
  EXPECT_TRUE(Compatible(LockMode::kRho, LockMode::kRho));
  EXPECT_TRUE(Compatible(LockMode::kRho, LockMode::kAlpha));
  EXPECT_FALSE(Compatible(LockMode::kRho, LockMode::kXi));
  EXPECT_TRUE(Compatible(LockMode::kAlpha, LockMode::kRho));
  EXPECT_FALSE(Compatible(LockMode::kAlpha, LockMode::kAlpha));
  EXPECT_FALSE(Compatible(LockMode::kAlpha, LockMode::kXi));
  EXPECT_FALSE(Compatible(LockMode::kXi, LockMode::kRho));
  EXPECT_FALSE(Compatible(LockMode::kXi, LockMode::kAlpha));
  EXPECT_FALSE(Compatible(LockMode::kXi, LockMode::kXi));
}

TEST(RaxLockTest, ManyConcurrentReaders) {
  RaxLock lock;
  constexpr int kReaders = 8;
  std::atomic<int> inside{0};
  std::atomic<int> arrived{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&] {
      lock.RhoLock();
      arrived.fetch_add(1);
      const int now = inside.fetch_add(1) + 1;
      int p = peak.load();
      while (p < now && !peak.compare_exchange_weak(p, now)) {
      }
      // Hold rho until every reader is inside: rho is shared, so this
      // barrier always completes, and it makes full overlap deterministic
      // (a timed sleep is beaten by slow thread spawn under sanitizers).
      // The latch is monotonic, unlike `inside`, so no one spins forever.
      while (arrived.load() < kReaders) std::this_thread::yield();
      inside.fetch_sub(1);
      lock.UnRhoLock();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(peak.load(), kReaders);  // all readers overlapped
}

TEST(RaxLockTest, XiWaitsForAllReaders) {
  RaxLock lock;
  lock.RhoLock();
  lock.RhoLock();
  std::atomic<bool> xi_granted{false};
  std::thread writer([&] {
    lock.XiLock();
    xi_granted.store(true);
    lock.UnXiLock();
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(xi_granted.load());
  lock.UnRhoLock();
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(xi_granted.load());  // one rho still out
  lock.UnRhoLock();
  writer.join();
  EXPECT_TRUE(xi_granted.load());
}

TEST(RaxLockTest, ReadersQueueBehindWaitingXi) {
  // FIFO subject to compatibility: a rho arriving after a queued xi must not
  // overtake it (prevents writer starvation by a reader stream).
  RaxLock lock;
  lock.RhoLock();
  std::atomic<bool> xi_granted{false};
  std::atomic<bool> late_rho_granted{false};
  std::thread writer([&] {
    lock.XiLock();
    xi_granted.store(true);
    std::this_thread::sleep_for(milliseconds(30));
    lock.UnXiLock();
  });
  std::this_thread::sleep_for(milliseconds(20));  // let xi queue up
  std::thread late_reader([&] {
    lock.RhoLock();
    late_rho_granted.store(true);
    lock.UnRhoLock();
  });
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(late_rho_granted.load());  // queued behind xi
  lock.UnRhoLock();
  writer.join();
  late_reader.join();
  EXPECT_TRUE(xi_granted.load());
  EXPECT_TRUE(late_rho_granted.load());
}

TEST(RaxLockTest, UpgradeRhoToAlphaImmediateWhenFree) {
  RaxLock lock;
  lock.RhoLock();
  lock.UpgradeRhoToAlpha();
  // Now holding rho + alpha: another alpha must fail, another rho succeed.
  EXPECT_FALSE(lock.TryLock(LockMode::kAlpha));
  EXPECT_TRUE(lock.TryLock(LockMode::kRho));
  lock.Unlock(LockMode::kRho);
  lock.UnAlphaLock();
  lock.UnRhoLock();
  EXPECT_TRUE(lock.TryLock(LockMode::kXi));
  lock.Unlock(LockMode::kXi);
}

TEST(RaxLockTest, UpgradeWaitsForHeldAlpha) {
  RaxLock lock;
  lock.AlphaLock();  // another updater
  std::atomic<bool> upgraded{false};
  std::thread t([&] {
    lock.RhoLock();
    lock.UpgradeRhoToAlpha();
    upgraded.store(true);
    lock.UnAlphaLock();
    lock.UnRhoLock();
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(upgraded.load());
  lock.UnAlphaLock();
  t.join();
  EXPECT_TRUE(upgraded.load());
}

TEST(RaxLockTest, UpgradeBypassesQueuedXi) {
  // The paper's deadlock-freedom argument for lock conversion (section 2.5):
  // the converter holds rho, so a queued xi can never be granted first.  If
  // the conversion honored FIFO order the two would deadlock.
  RaxLock lock;
  lock.RhoLock();
  std::atomic<bool> xi_granted{false};
  std::thread writer([&] {
    lock.XiLock();
    xi_granted.store(true);
    lock.UnXiLock();
  });
  std::this_thread::sleep_for(milliseconds(30));  // xi now queued
  EXPECT_FALSE(xi_granted.load());
  lock.UpgradeRhoToAlpha();  // must not deadlock behind the queued xi
  lock.UnAlphaLock();
  lock.UnRhoLock();
  writer.join();
  EXPECT_TRUE(xi_granted.load());
}

TEST(RaxLockTest, GuardAcquiresAndReleases) {
  RaxLock lock;
  {
    RaxGuard guard(lock, LockMode::kXi);
    EXPECT_FALSE(lock.TryLock(LockMode::kRho));
  }
  EXPECT_TRUE(lock.TryLock(LockMode::kXi));
  lock.UnXiLock();
}

TEST(RaxLockTest, GuardReleaseIsIdempotent) {
  RaxLock lock;
  RaxGuard guard(lock, LockMode::kAlpha);
  guard.Release();
  EXPECT_TRUE(lock.TryLock(LockMode::kAlpha));
  lock.UnAlphaLock();
  guard.Release();  // no double unlock
  EXPECT_TRUE(lock.TryLock(LockMode::kXi));
  lock.UnXiLock();
}

TEST(RaxLockTest, TryLockFailsWhileWaitersQueued) {
  // Fairness: try-lock must not jump a queued waiter.
  RaxLock lock;
  lock.RhoLock();
  std::atomic<bool> xi_granted{false};
  std::thread writer([&] {
    lock.XiLock();
    xi_granted.store(true);
    lock.UnXiLock();
  });
  std::this_thread::sleep_for(milliseconds(30));  // xi queues
  EXPECT_FALSE(lock.TryLock(LockMode::kRho));     // would overtake the xi
  lock.UnRhoLock();
  writer.join();
  EXPECT_TRUE(xi_granted.load());
}

TEST(RaxLockTest, StatsCountAcquisitions) {
  RaxLock lock;
  lock.RhoLock();
  lock.UnRhoLock();
  lock.AlphaLock();
  lock.UnAlphaLock();
  lock.XiLock();
  lock.UnXiLock();
  const RaxLockStats s = lock.stats();
  EXPECT_EQ(s.rho_acquired, 1u);
  EXPECT_EQ(s.alpha_acquired, 1u);
  EXPECT_EQ(s.xi_acquired, 1u);
  EXPECT_EQ(s.upgrades, 0u);
}

// Invariant stress: under random concurrent traffic, the set of granted
// locks always satisfies the compatibility matrix.
TEST(RaxLockStressTest, GrantInvariantsHoldUnderLoad) {
  RaxLock lock;
  std::atomic<int> rho_holders{0};
  std::atomic<int> alpha_holders{0};
  std::atomic<int> xi_holders{0};
  std::atomic<bool> violation{false};

  auto check = [&] {
    const int r = rho_holders.load();
    const int a = alpha_holders.load();
    const int x = xi_holders.load();
    if (a > 1 || x > 1 || (x == 1 && (r > 0 || a > 0))) {
      violation.store(true);
    }
  };

  constexpr int kThreads = 6;
  constexpr int kIters = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(uint64_t(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        switch (rng.Uniform(4)) {
          case 0:
          case 1: {
            lock.RhoLock();
            rho_holders.fetch_add(1);
            check();
            rho_holders.fetch_sub(1);
            lock.UnRhoLock();
            break;
          }
          case 2: {
            lock.AlphaLock();
            alpha_holders.fetch_add(1);
            check();
            alpha_holders.fetch_sub(1);
            lock.UnAlphaLock();
            break;
          }
          case 3: {
            lock.XiLock();
            xi_holders.fetch_add(1);
            check();
            xi_holders.fetch_sub(1);
            lock.UnXiLock();
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

// Upgrade stress: converters racing with plain alpha/xi traffic.
TEST(RaxLockStressTest, UpgradesUnderLoad) {
  RaxLock lock;
  std::atomic<int> alpha_holders{0};
  std::atomic<bool> violation{false};
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(uint64_t(t) + 100);
      for (int i = 0; i < kIters; ++i) {
        if (rng.Bernoulli(0.5)) {
          lock.RhoLock();
          lock.UpgradeRhoToAlpha();
          if (alpha_holders.fetch_add(1) != 0) violation.store(true);
          alpha_holders.fetch_sub(1);
          lock.UnAlphaLock();
          lock.UnRhoLock();
        } else {
          lock.AlphaLock();
          if (alpha_holders.fetch_add(1) != 0) violation.store(true);
          alpha_holders.fetch_sub(1);
          lock.UnAlphaLock();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(lock.stats().upgrades, 0u);
}

}  // namespace
}  // namespace exhash::util
