// Epoch-based reclamation (util/epoch.h, DESIGN.md §4d): the pin/retire/
// advance contract in isolation, then against the snapshot directory it
// exists for.  The stress cases are the ones the sanitizer presets earn
// their keep on: ASan proves a pinned reader never touches freed memory,
// TSan proves the pin/scan happens-before edges are real.

#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/directory.h"
#include "storage/page.h"

namespace exhash::util {
namespace {

void CountingDeleter(void* ctx, uint64_t) {
  static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
}

// --- Domain contract, no readers involved ---

TEST(EpochDomainTest, RetireListDrainsOnQuiescence) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  for (int i = 0; i < 1000; ++i) {
    domain.Retire(&CountingDeleter, &freed, uint64_t(i));
  }
  domain.Drain();
  EXPECT_EQ(freed.load(), 1000);
  EXPECT_EQ(domain.pending(), 0u);
  const EpochStats s = domain.stats();
  EXPECT_EQ(s.retired, 1000u);
  EXPECT_EQ(s.freed, 1000u);
  EXPECT_GT(s.advances, 0u);
}

TEST(EpochDomainTest, FreeNeedsTwoAdvancesPastTheRetireEpoch) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  const uint64_t e0 = domain.epoch();
  domain.Retire(&CountingDeleter, &freed, 0);
  // Retire runs one opportunistic reclamation itself; a single advance
  // cannot free an object tagged e0 — it needs the epoch to reach e0+2.
  EXPECT_EQ(freed.load(), 0);
  domain.TryReclaim();
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_GE(domain.epoch(), e0 + 2);
}

TEST(EpochDomainTest, PinnedSlotBlocksReclamation) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  EpochDomain::Slot* slot = domain.AcquireSlot();
  domain.Pin(slot);
  domain.Retire(&CountingDeleter, &freed, 0);
  // The pinned slot still shows the pre-advance epoch, so the epoch can
  // gain at most one and the object (which needs +2) must stay pending.
  for (int i = 0; i < 10; ++i) domain.TryReclaim();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(domain.pending(), 1u);
  domain.Unpin(slot);
  domain.Drain();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochDomainTest, DestructorDrainsPendingRetires) {
  std::atomic<int> freed{0};
  {
    EpochDomain domain;
    domain.Retire(&CountingDeleter, &freed, 0);
    domain.Retire(&CountingDeleter, &freed, 1);
  }
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochDomainTest, PinCountsAndSlotReuseAcrossThreads) {
  EpochDomain domain;
  // Threads register lazily and release their slots at exit; a later
  // thread may adopt a released slot, so the slot registry stays bounded
  // while the pin total keeps counting.
  for (int round = 0; round < 4; ++round) {
    std::thread([&] {
      EpochPin pin(domain);
    }).join();
  }
  EXPECT_EQ(domain.stats().pins, 4u);
}

TEST(EpochDomainTest, ThreadExitWhilePinnedElsewhereIsSafe) {
  // A thread that used domain A must not corrupt domain B's registry when
  // it exits, and a domain destroyed before the thread exits must not be
  // touched by the thread-local cache teardown (the live-domain registry
  // check).  ASan is the judge here.
  auto* doomed = new EpochDomain;
  EpochDomain survivor;
  std::thread t([&] {
    EpochPin p1(*doomed);
    EpochPin p2(survivor);
  });
  t.join();
  delete doomed;  // before any later thread touches its cached slots
  std::thread([&] { EpochPin p(survivor); }).join();
  survivor.Drain();
}

// --- Against the snapshot directory ---

TEST(EpochDirectoryTest, PinnedReaderSurvivesDoublingAndHalving) {
  core::Directory dir(2, 12);
  for (uint64_t i = 0; i < 4; ++i) {
    dir.SetEntry(i, storage::PageId(100 + i));
  }

  EpochPin pin(EpochDomain::Global());
  const core::DirectorySnapshot* snap = dir.Load();
  const uint64_t version = snap->version;

  // A writer doubles twice, halves twice, and rewrites entries — each
  // mutation publishes a new snapshot and retires the predecessor, ours
  // included.  The pin must keep the loaded snapshot readable throughout
  // (ASan fails this test loudly if a retired snapshot is freed early).
  std::thread writer([&] {
    ASSERT_TRUE(dir.Double());
    ASSERT_TRUE(dir.Double());
    for (uint64_t i = 0; i < dir.NumEntries(); ++i) {
      dir.SetEntry(i, storage::PageId(500 + i));
    }
    dir.Halve();
    dir.Halve();
  });
  writer.join();

  // The snapshot is immutable: same depth, same entries, same version as
  // the instant it was loaded, no matter what was published since.
  EXPECT_EQ(snap->depth, 2);
  EXPECT_EQ(snap->version, version);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap->Entry(i), storage::PageId(100 + i));
  }
  EXPECT_GT(dir.version(), version);
}

TEST(EpochStressTest, ChurnDoublingHalvingWhileReadersSpin) {
  core::Directory dir(1, 12);
  dir.SetEntry(0, 11);
  dir.SetEntry(1, 22);

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::atomic<uint64_t> reads{0};

  // Three readers load-and-scan under a pin; one writer churns the shape.
  // Every entry of every observed snapshot must be valid: a torn or
  // prematurely freed snapshot shows up as kInvalidPage (or as an ASan /
  // TSan report under the sanitizer presets).
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochPin pin(EpochDomain::Global());
        const core::DirectorySnapshot* snap = dir.Load();
        for (uint64_t i = 0; i < snap->NumEntries(); ++i) {
          if (snap->Entry(i) == storage::kInvalidPage) {
            ok.store(false, std::memory_order_relaxed);
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Wait for the readers to actually run before churning (on a one-core
  // box the writer can otherwise finish before they are first scheduled).
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  for (int round = 0; round < 400; ++round) {
    ASSERT_TRUE(dir.Double());
    for (uint64_t i = 0; i < dir.NumEntries(); ++i) {
      dir.SetEntry(i, storage::PageId(1 + uint64_t(round) + i));
    }
    ASSERT_TRUE(dir.Double());
    dir.Halve();
    dir.Halve();
    if ((round & 31) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  EXPECT_TRUE(ok.load());
  EXPECT_GT(reads.load(), 0u);
  EpochDomain::Global().Drain();
  EXPECT_EQ(EpochDomain::Global().pending(), 0u);
}

TEST(EpochStressTest, ConcurrentRetireAndPinChurn) {
  EpochDomain domain;
  std::atomic<bool> stop{false};
  int retired_total = 0;

  std::vector<std::thread> pinners;
  for (int t = 0; t < 2; ++t) {
    pinners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochPin pin(domain);
      }
    });
  }
  std::vector<std::thread> retirers;
  std::atomic<int> retired{0};
  for (int t = 0; t < 2; ++t) {
    retirers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        // Heap objects so ASan catches a double free or a leak.
        auto* obj = new uint64_t(uint64_t(i));
        domain.Retire(
            [](void* ctx, uint64_t) {
              delete static_cast<uint64_t*>(ctx);
            },
            obj, 0);
        retired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& r : retirers) r.join();
  retired_total = retired.load();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& p : pinners) p.join();

  domain.Drain();
  EXPECT_EQ(domain.pending(), 0u);
  EXPECT_EQ(domain.stats().retired, uint64_t(retired_total));
  EXPECT_EQ(domain.stats().freed, uint64_t(retired_total));
}

}  // namespace
}  // namespace exhash::util
