#include "util/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace exhash::util {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, BasicAccounting) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  h.Add(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v);
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileWithinBucketError) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(1000);
  // Log buckets bound the estimate within a factor of two.
  EXPECT_GE(h.Percentile(50), 512u);
  EXPECT_LE(h.Percentile(50), 2048u);
}

TEST(HistogramTest, ZeroValuesLandInBucketZero) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Percentile(50), 1u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_LT(a.Percentile(25), 100u);
  EXPECT_GT(a.Percentile(75), 100000u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ConcurrentAddsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Add(uint64_t(i) + 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.max(), uint64_t{kPerThread});
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(5);
  const std::string s = h.Summary("us");
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

}  // namespace
}  // namespace exhash::util
