#include "util/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace exhash::util {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, BasicAccounting) {
  Histogram h;
  h.Add(100);
  h.Add(200);
  h.Add(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v);
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, PercentileWithinBucketError) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(1000);
  // Log buckets bound the estimate within a factor of two.
  EXPECT_GE(h.Percentile(50), 512u);
  EXPECT_LE(h.Percentile(50), 2048u);
}

TEST(HistogramTest, ZeroValuesLandInBucketZero) {
  Histogram h;
  h.Add(0);
  h.Add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Percentile(50), 1u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_LT(a.Percentile(25), 100u);
  EXPECT_GT(a.Percentile(75), 100000u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Add(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ConcurrentAddsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Add(uint64_t(i) + 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.max(), uint64_t{kPerThread});
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(5);
  const std::string s = h.Summary("us");
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

// --- bucket boundary math ---
//
// Buckets are [2^i, 2^(i+1)); the estimate for a value is its bucket's
// midpoint.  These tests pin the boundary behavior exactly: 2^i and 2^i - 1
// land in adjacent buckets, so their estimates must differ, and each
// estimate must stay within the bucket that produced it.

TEST(HistogramTest, PowerOfTwoBoundariesSeparateBuckets) {
  for (int i = 1; i < 62; i += 7) {
    const uint64_t boundary = uint64_t{1} << i;
    Histogram below;
    Histogram at;
    below.Add(boundary - 1);
    at.Add(boundary);
    const uint64_t est_below = below.Percentile(50);
    const uint64_t est_at = at.Percentile(50);
    // [2^(i-1), 2^i) vs [2^i, 2^(i+1)): estimates from different buckets.
    EXPECT_LT(est_below, boundary) << "i=" << i;
    EXPECT_GE(est_at, boundary) << "i=" << i;
    EXPECT_LT(est_at, 2 * boundary) << "i=" << i;
  }
}

TEST(HistogramTest, EstimateWithinFactorTwoEverywhere) {
  // The documented accuracy contract: relative error < 2x at any scale.
  for (const uint64_t v : {uint64_t{1}, uint64_t{3}, uint64_t{100},
                           uint64_t{4095}, uint64_t{4096},
                           uint64_t{1} << 40, (uint64_t{1} << 62) + 17}) {
    Histogram h;
    h.Add(v);
    const uint64_t est = h.Percentile(50);
    EXPECT_GE(est, v / 2) << "v=" << v;
    EXPECT_LE(est, v * 2) << "v=" << v;
  }
}

TEST(HistogramTest, TopBucketHoldsHugeValues) {
  Histogram h;
  const uint64_t huge = ~uint64_t{0} - 1;
  h.Add(huge);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), huge);
  // The top bucket's midpoint computation must not overflow to a tiny value.
  EXPECT_GE(h.Percentile(50), uint64_t{1} << 62);
}

TEST(HistogramTest, PercentileZeroAndHundredEdges) {
  Histogram h;
  h.Add(1);
  h.Add(1u << 20);
  const uint64_t p0 = h.Percentile(0);
  const uint64_t p100 = h.Percentile(100);
  EXPECT_LE(p0, 2u) << "p0 reports from the lowest occupied bucket";
  EXPECT_GE(p100, 1u << 20) << "p100 reports from the highest occupied bucket";
  EXPECT_LE(p100, 1u << 21);
}

// --- merge math ---

TEST(HistogramTest, MergeAddsSums) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.sum(), 40u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(HistogramTest, MergeOfEmptyIsIdentity) {
  Histogram a;
  Histogram empty;
  a.Add(7);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.sum(), 7u);
  EXPECT_EQ(a.max(), 7u);
}

TEST(HistogramTest, MergePreservesPercentileMath) {
  // Merging two histograms must give the same percentile estimates as one
  // histogram fed all the values — per-bucket addition guarantees it.
  Histogram merged;
  Histogram parts[2];
  Histogram whole;
  for (uint64_t v = 1; v <= 4000; ++v) {
    parts[v % 2].Add(v);
    whole.Add(v);
  }
  merged.Merge(parts[0]);
  merged.Merge(parts[1]);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_EQ(merged.Percentile(p), whole.Percentile(p)) << "p=" << p;
  }
}

}  // namespace
}  // namespace exhash::util
