#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace exhash::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.Uniform(8)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(1000, 0.99, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, IsSkewedTowardSmallValues) {
  ZipfGenerator zipf(10000, 0.99, 4);
  int in_top_1pct = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 100) ++in_top_1pct;
  }
  // With theta=0.99 the hottest 1% draw far more than 1% of traffic.
  EXPECT_GT(in_top_1pct, kSamples / 4);
}

TEST(RngTest, MixedCallSequenceIsReproducible) {
  // Reproducibility must hold across *interleaved* draw kinds, not just a
  // stream of Next() — benches mix Uniform/NextDouble/Bernoulli and a
  // replay must retrace them exactly.
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 500; ++i) {
    switch (i % 4) {
      case 0:
        EXPECT_EQ(a.Next(), b.Next()) << i;
        break;
      case 1:
        EXPECT_EQ(a.Uniform(1000), b.Uniform(1000)) << i;
        break;
      case 2:
        EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble()) << i;
        break;
      case 3:
        EXPECT_EQ(a.Bernoulli(0.5), b.Bernoulli(0.5)) << i;
        break;
    }
  }
}

TEST(RngTest, SeedZeroStillProducesVariedOutput) {
  // xoshiro-family generators die on an all-zero state; the seeding path
  // must avoid it even for seed 0.
  Rng rng(0);
  std::vector<uint64_t> draws;
  for (int i = 0; i < 16; ++i) draws.push_back(rng.Next());
  int distinct = 0;
  for (size_t i = 1; i < draws.size(); ++i) {
    if (draws[i] != draws[0]) ++distinct;
  }
  EXPECT_GT(distinct, 10);
}

TEST(ZipfTest, SameSeedSameSequence) {
  ZipfGenerator a(5000, 0.99, 42);
  ZipfGenerator b(5000, 0.99, 42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next()) << i;
}

TEST(ZipfTest, DifferentSeedsDiverge) {
  ZipfGenerator a(5000, 0.99, 1);
  ZipfGenerator b(5000, 0.99, 2);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(ZipfTest, ThetaZeroIsNearUniform) {
  ZipfGenerator zipf(100, 0.01, 5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  int nonzero = 0;
  for (int c : counts) {
    if (c > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 95);
}

}  // namespace
}  // namespace exhash::util
