// Golden-format guard for the bench JSON artifacts (DESIGN.md §8).
//
// The one-line BENCH_<name>.json files are load-bearing: they are diffed
// across PRs and parsed by tooling, and the --metrics sidecar feature
// explicitly promises not to perturb them.  The artifacts themselves are
// regenerated per run (gitignored), so the golden here is the *shape*:
//
//   * an embedded known-good BENCH_throughput.json line must keep parsing
//     and carrying the agreed schema (if the bench main's emitter changes
//     shape, regenerating this sample breaks this test -> deliberate bump),
//   * a freshly generated BENCH_throughput.json in the source tree, when
//     present, must match the same schema,
//   * the MetricsSidecar writer must produce a parseable document with the
//     agreed {"bench":...,"metrics":{label:snapshot}} envelope.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "core/ellis_v1.h"
#include "metrics/registry.h"
#include "tests/metrics/mini_json.h"
#include "util/epoch.h"

namespace exhash {
namespace {

using exhash::testing::JsonValue;
using exhash::testing::MiniJsonParser;

// Captured from a real bench_throughput run; shortened but structurally
// identical: mix -> table -> thread-count -> ops/sec.
const char kGoldenThroughputLine[] =
    "{\"bench\":\"throughput\",\"ops_per_sec\":{"
    "\"100f/0i/0d\":{\"ellis-v1\":{\"1\":3754526,\"8\":6344736},"
    "\"ellis-v2\":{\"1\":7053547,\"8\":6599489}},"
    "\"50f/25i/25d\":{\"ellis-v1\":{\"1\":5734781,\"8\":267098},"
    "\"ellis-v2\":{\"1\":6327960,\"8\":5797764}}}}";

void ExpectThroughputSchema(const JsonValue& doc) {
  const JsonValue* bench = doc.Get("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "throughput");
  const JsonValue* ops = doc.Get("ops_per_sec");
  ASSERT_NE(ops, nullptr);
  ASSERT_TRUE(ops->is_object());
  ASSERT_FALSE(ops->object.empty());
  for (const auto& [mix, tables] : ops->object) {
    ASSERT_TRUE(tables.is_object()) << mix;
    for (const auto& [table, threads] : tables.object) {
      ASSERT_TRUE(threads.is_object()) << table;
      for (const auto& [count, value] : threads.object) {
        EXPECT_GT(std::stoi(count), 0) << "thread keys are counts";
        EXPECT_TRUE(value.is_number()) << mix << "/" << table << "/" << count;
        EXPECT_GE(value.number, 0);
      }
    }
  }
}

TEST(BenchFormatTest, GoldenThroughputLineKeepsItsSchema) {
  const auto doc = MiniJsonParser::Parse(kGoldenThroughputLine);
  ASSERT_TRUE(doc.has_value());
  ExpectThroughputSchema(*doc);
  // The collapse cell E12 diagnoses is part of the golden record.
  EXPECT_EQ(doc->Get("ops_per_sec")
                ->Get("50f/25i/25d")
                ->Get("ellis-v1")
                ->Get("8")
                ->number,
            267098);
}

// When a generated artifact is present (a bench ran in this tree), it must
// carry the exact same schema as the golden — proof the --metrics sidecar
// work did not perturb the one-liner.
TEST(BenchFormatTest, GeneratedThroughputArtifactMatchesGolden) {
  const std::string path =
      std::string(EXHASH_SOURCE_DIR) + "/BENCH_throughput.json";
  std::ifstream in(path);
  if (!in.is_open()) {
    GTEST_SKIP() << "no generated BENCH_throughput.json in this tree";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = MiniJsonParser::Parse(buffer.str());
  ASSERT_TRUE(doc.has_value()) << "artifact is not valid JSON";
  ExpectThroughputSchema(*doc);
}

// Captured from a real bench_ycsb run; shortened to two workloads and two
// tables but structurally identical: slo -> workload -> table -> latency
// cell, plus the storm pair with its mitigation counters.
const char kGoldenYcsbLine[] =
    "{\"bench\":\"ycsb\",\"slo\":{"
    "\"A\":{\"ellis-v1\":{\"ops_per_sec\":1514806,\"p50\":448,\"p99\":1184,"
    "\"p999\":4544},"
    "\"ellis-v2\":{\"ops_per_sec\":1857038,\"p50\":384,\"p99\":928,"
    "\"p999\":3392}},"
    "\"scan\":{\"ellis-v1\":{\"ops_per_sec\":312903,\"p50\":544,\"p99\":29184,"
    "\"p999\":43520},"
    "\"ellis-v2\":{\"ops_per_sec\":338161,\"p50\":512,\"p99\":27136,"
    "\"p999\":39936}}},"
    "\"storm\":{"
    "\"unmitigated\":{\"ops_per_sec\":1573734,\"p50\":480,\"p99\":1248,"
    "\"p999\":5440,\"seq_fallbacks\":1,\"bias_splits\":0},"
    "\"mitigated\":{\"ops_per_sec\":1886792,\"p50\":416,\"p99\":1056,"
    "\"p999\":4544,\"seq_fallbacks\":0,\"bias_splits\":26}}}";

void ExpectLatencyCell(const JsonValue& cell, const std::string& where) {
  for (const char* field : {"ops_per_sec", "p50", "p99", "p999"}) {
    const JsonValue* v = cell.Get(field);
    ASSERT_NE(v, nullptr) << where << "/" << field;
    EXPECT_TRUE(v->is_number()) << where << "/" << field;
    EXPECT_GE(v->number, 0) << where << "/" << field;
  }
}

void ExpectYcsbSchema(const JsonValue& doc) {
  const JsonValue* bench = doc.Get("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "ycsb");
  const JsonValue* slo = doc.Get("slo");
  ASSERT_NE(slo, nullptr);
  ASSERT_TRUE(slo->is_object());
  ASSERT_FALSE(slo->object.empty());
  for (const auto& [workload, tables] : slo->object) {
    ASSERT_TRUE(tables.is_object()) << workload;
    ASSERT_FALSE(tables.object.empty()) << workload;
    for (const auto& [table, cell] : tables.object) {
      ExpectLatencyCell(cell, workload + "/" + table);
    }
  }
  // The storm pair is the mitigation's acceptance record: both variants,
  // each carrying the fallback/bias counters next to its percentiles.
  const JsonValue* storm = doc.Get("storm");
  ASSERT_NE(storm, nullptr);
  for (const char* variant : {"unmitigated", "mitigated"}) {
    const JsonValue* cell = storm->Get(variant);
    ASSERT_NE(cell, nullptr) << variant;
    ExpectLatencyCell(*cell, variant);
    for (const char* field : {"seq_fallbacks", "bias_splits"}) {
      const JsonValue* v = cell->Get(field);
      ASSERT_NE(v, nullptr) << variant << "/" << field;
      EXPECT_TRUE(v->is_number());
    }
  }
}

TEST(BenchFormatTest, GoldenYcsbLineKeepsItsSchema) {
  const auto doc = MiniJsonParser::Parse(kGoldenYcsbLine);
  ASSERT_TRUE(doc.has_value());
  ExpectYcsbSchema(*doc);
  // The mitigation's signature cell is part of the golden record: bias
  // splits fired in the mitigated run and only there.
  EXPECT_EQ(doc->Get("storm")->Get("mitigated")->Get("bias_splits")->number,
            26);
  EXPECT_EQ(doc->Get("storm")->Get("unmitigated")->Get("bias_splits")->number,
            0);
}

TEST(BenchFormatTest, GeneratedYcsbArtifactMatchesGolden) {
  const std::string path = std::string(EXHASH_SOURCE_DIR) + "/BENCH_ycsb.json";
  std::ifstream in(path);
  if (!in.is_open()) {
    GTEST_SKIP() << "no generated BENCH_ycsb.json in this tree";
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = MiniJsonParser::Parse(buffer.str());
  ASSERT_TRUE(doc.has_value()) << "artifact is not valid JSON";
  ExpectYcsbSchema(*doc);
}

TEST(BenchFormatTest, MetricsSidecarEnvelopeParses) {
  metrics::Registry registry;
  EXHASH_METRICS_ONLY(registry.GetCounter("table.splits")->Add(42));
  EXHASH_METRICS_ONLY(registry.GetHistogram("lat")->Add(100));

  bench::MetricsSidecar sidecar("format_check");
  sidecar.Add("cell/one", registry.TakeSnapshot());
  sidecar.Add("cell/two", registry.TakeSnapshot());
  ASSERT_TRUE(sidecar.Write());

  std::ifstream in("BENCH_format_check_metrics.json");
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove("BENCH_format_check_metrics.json");

  const auto doc = MiniJsonParser::Parse(buffer.str());
  ASSERT_TRUE(doc.has_value()) << buffer.str();
  EXPECT_EQ(doc->Get("bench")->str, "format_check");
  const JsonValue* cells = doc->Get("metrics");
  ASSERT_NE(cells, nullptr);
  const JsonValue* one = cells->Get("cell/one");
  ASSERT_NE(one, nullptr);
  ASSERT_NE(one->Get("counters"), nullptr);
  ASSERT_NE(one->Get("histograms"), nullptr);
  if constexpr (metrics::kCompiledIn) {
    EXPECT_EQ(one->Get("counters")->Get("table.splits")->number, 42);
    EXPECT_EQ(one->Get("histograms")->Get("lat")->Get("count")->number, 1);
  }
  ASSERT_NE(cells->Get("cell/two"), nullptr);
}

// Golden counter namespace for an instrumented table.  The sidecar files
// are diffed by name, so a renamed or lingering counter silently breaks
// every consumer: this pins that the ρ-era directory-lock series died with
// the snapshot directory (DESIGN.md §4d) and that the replacement
// snapshot/epoch families are exported, by taking a real snapshot from a
// live table rather than trusting a hand-written sample.
TEST(BenchFormatTest, TableCounterNamespaceMatchesSnapshotDirectoryEra) {
  if (!metrics::kCompiledIn) {
    GTEST_SKIP() << "EXHASH_METRICS=OFF exports nothing by design";
  }
  metrics::Registry registry;
  core::TableOptions options;
  options.page_size = 112;  // capacity 4: the handful of inserts split
  options.initial_depth = 1;
  options.metrics = true;
  options.metrics_registry = &registry;
  options.metrics_prefix = "t";
  core::EllisHashTableV1 table(options);
  for (uint64_t k = 0; k < 24; ++k) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  ASSERT_GT(table.Stats().splits, 0u);

  const metrics::Snapshot snap = registry.TakeSnapshot();
  // Dead ρ-era names must stay dead — including the bucket-lock upgrade
  // series, structurally zero since the optimistic read path (DESIGN.md
  // §4e) removed the last rho->alpha converter.
  EXPECT_EQ(snap.counters.count("t.dir_lock.rho"), 0u);
  EXPECT_EQ(snap.counters.count("t.dir_lock.upgrades"), 0u);
  EXPECT_EQ(snap.counters.count("t.bucket_locks.upgrades"), 0u);
  EXPECT_EQ(snap.histograms.count("t.dir_lock.rho.acquire_ns"), 0u);
  // The families that replaced them.
  for (const char* name :
       {"t.dir.snapshot_publishes", "t.dir.snapshot_version",
        "t.recovery.stale_reads", "t.epoch.epoch", "t.epoch.pins",
        "t.epoch.retired", "t.epoch.freed", "t.epoch.advances",
        "t.epoch.pending", "t.dir_lock.alpha", "t.dir_lock.xi",
        "t.dir_lock.contended", "t.bucket.optimistic_hits",
        "t.bucket.seq_retries", "t.bucket.seq_fallbacks",
        // YCSB op families and the hot-bucket detection export
        // (DESIGN.md §10) — present (zero) even with mitigation off.
        "t.ops.updates", "t.ops.scans", "t.hot.bias_splits",
        "t.hot.sampled", "t.hot.windows", "t.hot.marks", "t.hot.consumed",
        "t.hot.hot_now", "t.hot.warm_now", "t.hot.top_count",
        // Durability layer (DESIGN.md §9): exported even with the WAL off
        // (zeros) — the namespace is not config-dependent.
        "t.wal.txns", "t.wal.appends", "t.wal.commits", "t.wal.flushes",
        "t.wal.flushed_bytes", "t.recovery.replayed_images",
        "t.recovery.repaired_slots", "t.recovery.committed_txns"}) {
    EXPECT_EQ(snap.counters.count(name), 1u) << name;
  }
  // The directory lock still latencies its surviving modes; the bucket
  // locks keep all three.
  EXPECT_EQ(snap.histograms.count("t.dir_lock.alpha.acquire_ns"), 1u);
  EXPECT_EQ(snap.histograms.count("t.dir_lock.xi.acquire_ns"), 1u);
  EXPECT_EQ(snap.histograms.count("t.bucket_locks.rho.acquire_ns"), 1u);
  // And the new names flow through the sidecar envelope unchanged.
  bench::MetricsSidecar sidecar("namespace_check");
  sidecar.Add("cell", snap);
  ASSERT_TRUE(sidecar.Write());
  std::ifstream in("BENCH_namespace_check_metrics.json");
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::remove("BENCH_namespace_check_metrics.json");
  const auto doc = MiniJsonParser::Parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->Get("metrics")->Get("cell")->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Get("t.dir.snapshot_publishes"), nullptr);
  EXPECT_EQ(counters->Get("t.dir_lock.rho"), nullptr);
}

// The sidecar path convention: BENCH_<name>_metrics.json, never touching
// BENCH_<name>.json.
TEST(BenchFormatTest, SidecarWritesToItsOwnFile) {
  bench::MetricsSidecar sidecar("pathcheck");
  ASSERT_TRUE(sidecar.Write());
  EXPECT_EQ(std::remove("BENCH_pathcheck_metrics.json"), 0)
      << "sidecar must write BENCH_<name>_metrics.json";
  EXPECT_NE(std::remove("BENCH_pathcheck.json"), 0)
      << "sidecar must not create the one-liner's file";
}

}  // namespace
}  // namespace exhash
