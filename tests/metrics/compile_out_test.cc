// The compile-out guarantee (DESIGN.md §8): with EXHASH_METRICS=OFF the
// metrics aliases resolve to the noop:: stubs, which are stateless and whose
// calls the optimizer deletes.  Both namespaces are always compiled, so this
// test runs in every build configuration and checks:
//
//   * the gate constant agrees with the macro and with which type each
//     alias picked,
//   * the noop types are empty (no storage -> nothing to update at runtime),
//   * the noop call surface is inert but API-compatible.
//
// The EXHASH_METRICS=OFF CMake preset then rebuilds everything with the
// aliases flipped and reruns the full suite — this file is what makes that
// run meaningful.

#include <gtest/gtest.h>

#include <type_traits>

#include "metrics/epoch_metrics.h"
#include "metrics/gate.h"
#include "metrics/registry.h"
#include "metrics/sharded_counter.h"
#include "metrics/trace_ring.h"
#include "util/epoch.h"

namespace exhash::metrics {
namespace {

// --- gate consistency ---

static_assert(kCompiledIn == (EXHASH_METRICS_ENABLED != 0),
              "gate constant must mirror the macro");

#if EXHASH_METRICS_ENABLED
static_assert(std::is_same_v<Counter, detail::ShardedCounter>);
static_assert(std::is_same_v<Registry, detail::Registry>);
static_assert(std::is_same_v<Trace, detail::Trace>);
#else
static_assert(std::is_same_v<Counter, noop::ShardedCounter>);
static_assert(std::is_same_v<Registry, noop::Registry>);
static_assert(std::is_same_v<Trace, noop::Trace>);
#endif

// --- the noop types carry no state ---

static_assert(std::is_empty_v<noop::ShardedCounter>,
              "a disabled counter must occupy no storage");
static_assert(std::is_empty_v<noop::Trace>,
              "the disabled trace front-end must be stateless");

// The real counter, by contrast, is the full sharded array.
static_assert(sizeof(detail::ShardedCounter) ==
                  64 * detail::kCounterShards,
              "one cache line per shard");

// --- the epoch hooks vanish with the gate ---

// EpochDomain's metrics sink (util/epoch.h) is not a noop variant — the
// member function and the atomic pointer behind it are #if'd out entirely,
// so the OFF build's retire/free/advance paths carry no sink load at all.
// Detect the member with a requires-expression so this file proves the
// right thing in both build flavors.
template <typename D>
constexpr bool kHasEpochMetricsSink =
    requires(D d, EpochMetrics* sink) { d.SetMetricsSink(sink); };

static_assert(kHasEpochMetricsSink<util::EpochDomain> ==
                  (EXHASH_METRICS_ENABLED != 0),
              "the epoch sink hook must exist exactly when metrics do");

TEST(CompileOutTest, GateConstantMatchesBuild) {
#if EXHASH_METRICS_ENABLED
  EXPECT_TRUE(kCompiledIn);
#else
  EXPECT_FALSE(kCompiledIn);
#endif
}

TEST(CompileOutTest, NoopCounterIsInert) {
  noop::ShardedCounter c;
  c.Add();
  c.Add(1000);
  EXPECT_EQ(c.Read(), 0u);
  c.Reset();
  EXPECT_EQ(c.Read(), 0u);
}

TEST(CompileOutTest, NoopRegistryIsInert) {
  noop::Registry r;
  r.GetCounter("anything")->Add(5);
  r.GetHistogram("anything");
  const uint64_t handle = r.AddProvider(
      [](Snapshot* snap) { snap->counters["never"] = 1; });
  r.RemoveProvider(handle);
  const Snapshot snap = r.TakeSnapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(r.DumpText(), "");
}

TEST(CompileOutTest, NoopRegistryDumpJsonIsValidEmptyDocument) {
  // Callers parse DumpJson unconditionally; the disabled build must still
  // hand them a well-formed document.
  noop::Registry r;
  EXPECT_EQ(r.DumpJson(), "{\"counters\":{},\"histograms\":{}}");
}

TEST(CompileOutTest, NoopTraceNeverEnables) {
  noop::Trace::Enable(1 << 20);
  EXPECT_FALSE(noop::Trace::enabled());
  noop::Trace::Emit("point", 1, 2);
  EXPECT_TRUE(noop::Trace::Drain().empty());
  EXPECT_EQ(noop::Trace::DumpText(), "");
  noop::Trace::Disable();
}

// The EXHASH_METRICS_ONLY(...) macro must expand to nothing when disabled
// and to its argument when enabled — provable in both builds by counting.
TEST(CompileOutTest, MetricsOnlyMacroFollowsGate) {
  int runs = 0;
  EXHASH_METRICS_ONLY(++runs);
  EXPECT_EQ(runs, kCompiledIn ? 1 : 0);
}

#if EXHASH_METRICS_ENABLED
// The enabled-build half of the epoch-sink contract: while installed, the
// sink sees every retire, free, and advance; after uninstall it goes quiet.
TEST(CompileOutTest, EpochSinkTicksRetireFreeAdvance) {
  util::EpochDomain domain;
  EpochMetrics sink;
  domain.SetMetricsSink(&sink);

  auto noop_deleter = [](void*, uint64_t) {};
  domain.Retire(+noop_deleter, nullptr, 0);
  domain.Drain();
  EXPECT_EQ(sink.retired.load(), 1u);
  EXPECT_EQ(sink.freed.load(), 1u);
  EXPECT_GT(sink.advances.load(), 0u);

  domain.SetMetricsSink(nullptr);
  domain.Retire(+noop_deleter, nullptr, 0);
  domain.Drain();
  EXPECT_EQ(sink.retired.load(), 1u);
  EXPECT_EQ(sink.freed.load(), 1u);
}
#endif

// Whatever the build, the *selected* alias API works end to end; in the OFF
// build every assertion below degenerates to the inert expectations.
TEST(CompileOutTest, SelectedAliasRoundTrip) {
  Registry r;
  r.GetCounter("alias.counter")->Add(3);
  const Snapshot snap = r.TakeSnapshot();
  if constexpr (kCompiledIn) {
    EXPECT_EQ(snap.counters.at("alias.counter"), 3u);
  } else {
    EXPECT_TRUE(snap.counters.empty());
  }
}

}  // namespace
}  // namespace exhash::metrics
