// A deliberately tiny recursive-descent JSON parser for tests.
//
// Exists so the metrics tests can check DumpJson() output by *parsing* it —
// a round trip through an independent reader — instead of by substring
// matching, and so bench_format_test.cc can assert the committed
// BENCH_*.json artifacts keep their schema.  Supports the full value
// grammar the project emits: objects, arrays, strings (with \" \\ \uXXXX
// escapes), numbers, true/false/null.  Not a validator of exotic inputs; a
// parse failure returns nullopt and the test fails loudly.

#ifndef EXHASH_TESTS_METRICS_MINI_JSON_H_
#define EXHASH_TESTS_METRICS_MINI_JSON_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace exhash::testing {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class MiniJsonParser {
 public:
  // Parses one complete JSON document; trailing garbage fails the parse.
  static std::optional<JsonValue> Parse(const std::string& text) {
    MiniJsonParser p(text);
    JsonValue v;
    if (!p.ParseValue(&v)) return std::nullopt;
    p.SkipSpace();
    if (p.pos_ != text.size()) return std::nullopt;
    return v;
  }

 private:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ParseWord("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object[key] = std::move(value);
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          // ASCII-only escapes in our output; anything wider is preserved
          // as a replacement byte, which is enough for round-trip checks.
          *out += cp < 0x80 ? char(cp) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool ParseLiteral(JsonValue* out) {
    out->type = JsonValue::Type::kBool;
    if (text_[pos_] == 't') {
      out->boolean = true;
      return ParseWord("true");
    }
    out->boolean = false;
    return ParseWord("false");
  }

  bool ParseWord(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_++] != *p) return false;
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    out->type = JsonValue::Type::kNumber;
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace exhash::testing

#endif  // EXHASH_TESTS_METRICS_MINI_JSON_H_
