// Metrics registry and sharded-counter semantics (DESIGN.md §8): lose-free
// concurrent counting, interning, snapshot/delta arithmetic, providers, and
// a DumpJson round trip through an independent parser.

#include "metrics/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "metrics/sharded_counter.h"
#include "tests/metrics/mini_json.h"

namespace exhash::metrics {
namespace {

using exhash::testing::JsonValue;
using exhash::testing::MiniJsonParser;

TEST(ShardedCounterTest, StartsAtZero) {
  detail::ShardedCounter c;
  EXPECT_EQ(c.Read(), 0u);
}

TEST(ShardedCounterTest, AddAccumulates) {
  detail::ShardedCounter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Read(), 42u);
}

TEST(ShardedCounterTest, ResetZeroes) {
  detail::ShardedCounter c;
  c.Add(7);
  c.Reset();
  EXPECT_EQ(c.Read(), 0u);
}

// The load-bearing property: concurrent increments from many threads are
// never lost, whichever shards the threads land on.  8 threads matches the
// shard count; run under TSan this also proves the counter race-free.
TEST(ShardedCounterTest, ConcurrentAddsLoseNothing) {
  detail::ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Read(), uint64_t{kThreads} * kPerThread);
}

// Reads concurrent with writes must be monotone and never exceed the total
// written so far... a racy sum of per-shard atomics guarantees exactly that.
TEST(ShardedCounterTest, ConcurrentReadsAreMonotone) {
  detail::ShardedCounter c;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < 200000 && !stop.load(); ++i) c.Add(1);
  });
  uint64_t prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = c.Read();
    EXPECT_GE(now, prev);
    prev = now;
  }
  stop.store(true);
  writer.join();
  EXPECT_LE(prev, 200000u);
}

TEST(ShardedCounterTest, ThreadShardIsStablePerThread) {
  const unsigned a = detail::ThreadShard();
  const unsigned b = detail::ThreadShard();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, detail::kCounterShards);
}

TEST(RegistryTest, GetCounterInternsByName) {
  detail::Registry r;
  detail::ShardedCounter* a = r.GetCounter("x");
  detail::ShardedCounter* b = r.GetCounter("x");
  detail::ShardedCounter* c = r.GetCounter("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RegistryTest, GetHistogramInternsByName) {
  detail::Registry r;
  EXPECT_EQ(r.GetHistogram("h"), r.GetHistogram("h"));
  EXPECT_NE(r.GetHistogram("h"), r.GetHistogram("g"));
}

TEST(RegistryTest, SnapshotSeesCountersAndHistograms) {
  detail::Registry r;
  r.GetCounter("ops")->Add(5);
  r.GetHistogram("lat")->Add(100);
  r.GetHistogram("lat")->Add(300);
  const Snapshot snap = r.TakeSnapshot();
  ASSERT_TRUE(snap.counters.count("ops"));
  EXPECT_EQ(snap.counters.at("ops"), 5u);
  ASSERT_TRUE(snap.histograms.count("lat"));
  EXPECT_EQ(snap.histograms.at("lat").count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("lat").mean, 200.0);
  EXPECT_GE(snap.histograms.at("lat").max, 300u);
}

TEST(RegistryTest, DeltaSubtractsCounterwise) {
  detail::Registry r;
  r.GetCounter("a")->Add(10);
  const Snapshot before = r.TakeSnapshot();
  r.GetCounter("a")->Add(7);
  r.GetCounter("b")->Add(3);  // appears only in the later snapshot
  const Snapshot delta = r.TakeSnapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("a"), 7u);
  EXPECT_EQ(delta.counters.at("b"), 3u);
}

TEST(RegistryTest, DeltaClampsAtZeroAfterReset) {
  detail::Registry r;
  r.GetCounter("a")->Add(100);
  const Snapshot before = r.TakeSnapshot();
  r.Reset();
  r.GetCounter("a")->Add(2);
  // A reset between snapshots must not produce a wrapped giant.
  EXPECT_EQ(r.TakeSnapshot().Delta(before).counters.at("a"), 0u);
}

TEST(RegistryTest, DeltaDiffsHistogramCounts) {
  detail::Registry r;
  r.GetHistogram("h")->Add(10);
  r.GetHistogram("h")->Add(10);
  const Snapshot before = r.TakeSnapshot();
  r.GetHistogram("h")->Add(10);
  const Snapshot delta = r.TakeSnapshot().Delta(before);
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
}

TEST(RegistryTest, ProviderContributesAtSnapshotTime) {
  detail::Registry r;
  uint64_t source = 7;
  const uint64_t handle = r.AddProvider(
      [&source](Snapshot* snap) { snap->counters["ext.value"] = source; });
  EXPECT_EQ(r.TakeSnapshot().counters.at("ext.value"), 7u);
  source = 9;  // providers read live state, not a registration-time copy
  EXPECT_EQ(r.TakeSnapshot().counters.at("ext.value"), 9u);
  r.RemoveProvider(handle);
  EXPECT_EQ(r.TakeSnapshot().counters.count("ext.value"), 0u);
}

TEST(RegistryTest, RemoveProviderIsIdempotent) {
  detail::Registry r;
  const uint64_t handle = r.AddProvider([](Snapshot*) {});
  r.RemoveProvider(handle);
  r.RemoveProvider(handle);  // double-deregistration must be harmless
  r.RemoveProvider(12345);   // unknown handle too
}

TEST(RegistryTest, ResetZeroesOwnedState) {
  detail::Registry r;
  r.GetCounter("c")->Add(4);
  r.GetHistogram("h")->Add(9);
  r.Reset();
  const Snapshot snap = r.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(RegistryTest, TextDumpMentionsEveryMetric) {
  detail::Registry r;
  r.GetCounter("table.splits")->Add(3);
  r.GetHistogram("table.lat")->Add(50);
  const std::string text = r.DumpText();
  EXPECT_NE(text.find("table.splits"), std::string::npos);
  EXPECT_NE(text.find("table.lat"), std::string::npos);
}

// The JSON dump must survive a round trip through an independent parser
// with every value intact — not just "look like" JSON.
TEST(RegistryTest, DumpJsonRoundTrip) {
  detail::Registry r;
  r.GetCounter("ops.finds")->Add(12);
  r.GetCounter("ops.inserts")->Add(34);
  util::Histogram* h = r.GetHistogram("latency_ns");
  for (int i = 0; i < 100; ++i) h->Add(1000);
  r.AddProvider([](Snapshot* snap) { snap->counters["provided"] = 99; });

  const auto doc = MiniJsonParser::Parse(r.DumpJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->Get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_EQ(counters->Get("ops.finds")->number, 12);
  EXPECT_EQ(counters->Get("ops.inserts")->number, 34);
  EXPECT_EQ(counters->Get("provided")->number, 99);

  const JsonValue* histograms = doc->Get("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* lat = histograms->Get("latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Get("count")->number, 100);
  ASSERT_NE(lat->Get("p50"), nullptr);
  ASSERT_NE(lat->Get("p95"), nullptr);
  ASSERT_NE(lat->Get("p99"), nullptr);
  ASSERT_NE(lat->Get("max"), nullptr);
  EXPECT_EQ(lat->Get("max")->number, 1000);
}

TEST(RegistryTest, DumpJsonEscapesAwkwardNames) {
  detail::Registry r;
  r.GetCounter("weird\"name\\with\tstuff")->Add(1);
  const auto doc = MiniJsonParser::Parse(r.DumpJson());
  ASSERT_TRUE(doc.has_value()) << r.DumpJson();
  const JsonValue* counters = doc->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Get("weird\"name\\with\tstuff")->number, 1);
}

// Interning and snapshotting race against hot-path Add()s in real use;
// under TSan this is the proof the whole registry is data-race-free.
TEST(RegistryTest, ConcurrentUseIsSafe) {
  detail::Registry r;
  constexpr int kThreads = 8;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      detail::ShardedCounter* mine =
          r.GetCounter("worker." + std::to_string(t));
      detail::ShardedCounter* shared = r.GetCounter("shared");
      for (int i = 0; i < 20000; ++i) {
        mine->Add(1);
        shared->Add(1);
        if (i % 4096 == 0) r.GetHistogram("shared.h")->Add(uint64_t(i));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)r.TakeSnapshot();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const Snapshot snap = r.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("shared"), uint64_t{kThreads} * 20000);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters.at("worker." + std::to_string(t)), 20000u);
  }
}

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&detail::Registry::Global(), &detail::Registry::Global());
}

}  // namespace
}  // namespace exhash::metrics
