// Trace ring semantics (DESIGN.md §8): disabled-by-default no-op, per-thread
// rings that keep the last N events, tick-ordered merge, and text dump.
//
// The rings are process-global (per-thread, reachable after thread exit), so
// every test starts from Clear() and the suite tolerates events left over
// from other tests in the same binary by tagging points with unique names.

#include "metrics/trace_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace exhash::metrics {
namespace {

// Count the drained events whose point matches `tag` exactly.
size_t CountPoint(const std::vector<TraceEvent>& events, const char* tag) {
  return size_t(std::count_if(
      events.begin(), events.end(),
      [tag](const TraceEvent& e) { return std::string(e.point) == tag; }));
}

class TraceRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    detail::Trace::Disable();
    detail::Trace::Clear();
  }
  void TearDown() override {
    detail::Trace::Disable();
    detail::Trace::Clear();
  }
};

TEST_F(TraceRingTest, DisabledEmitRecordsNothing) {
  EXPECT_FALSE(detail::Trace::enabled());
  detail::Trace::Emit("disabled-point", 1, 2);
  EXPECT_EQ(CountPoint(detail::Trace::Drain(), "disabled-point"), 0u);
}

TEST_F(TraceRingTest, EnabledEmitIsDrained) {
  detail::Trace::Enable(64);
  EXPECT_TRUE(detail::Trace::enabled());
  detail::Trace::Emit("point-a", 10, 20);
  detail::Trace::Emit("point-b", 30);
  const auto events = detail::Trace::Drain();
  ASSERT_EQ(CountPoint(events, "point-a"), 1u);
  ASSERT_EQ(CountPoint(events, "point-b"), 1u);
  for (const TraceEvent& e : events) {
    if (std::string(e.point) == "point-a") {
      EXPECT_EQ(e.a, 10u);
      EXPECT_EQ(e.b, 20u);
    }
  }
}

TEST_F(TraceRingTest, DrainIsTickOrdered) {
  detail::Trace::Enable(256);
  for (uint64_t i = 0; i < 100; ++i) detail::Trace::Emit("ordered", i);
  const auto events = detail::Trace::Drain();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].tick, events[i].tick);
  }
}

TEST_F(TraceRingTest, RingKeepsOnlyTheLastCapacityEvents) {
  // Capacity applies to rings created after Enable; this thread's ring may
  // already exist from a previous test in this binary, so measure by what
  // survives: the *latest* events must be there, the earliest gone.
  detail::Trace::Clear();
  detail::Trace::Enable(8);
  for (uint64_t i = 0; i < 1000; ++i) detail::Trace::Emit("wrap", i);
  const auto events = detail::Trace::Drain();
  const size_t kept = CountPoint(events, "wrap");
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, 1000u);  // the ring wrapped: early events overwritten
  // The very last emit always survives.
  bool last_found = false;
  for (const TraceEvent& e : events) {
    if (std::string(e.point) == "wrap" && e.a == 999) last_found = true;
  }
  EXPECT_TRUE(last_found);
}

TEST_F(TraceRingTest, ClearEmptiesRings) {
  detail::Trace::Enable(64);
  detail::Trace::Emit("cleared");
  detail::Trace::Clear();
  EXPECT_EQ(CountPoint(detail::Trace::Drain(), "cleared"), 0u);
  EXPECT_TRUE(detail::Trace::enabled()) << "Clear must not disable tracing";
}

TEST_F(TraceRingTest, DisableStopsRecording) {
  detail::Trace::Enable(64);
  detail::Trace::Emit("before-disable");
  detail::Trace::Disable();
  detail::Trace::Emit("after-disable");
  const auto events = detail::Trace::Drain();
  EXPECT_EQ(CountPoint(events, "before-disable"), 1u);
  EXPECT_EQ(CountPoint(events, "after-disable"), 0u);
}

TEST_F(TraceRingTest, ThreadsGetDistinctRingIds) {
  detail::Trace::Enable(64);
  std::atomic<int> done{0};
  std::thread t1([&] {
    detail::Trace::Emit("thread-one");
    done.fetch_add(1);
  });
  std::thread t2([&] {
    detail::Trace::Emit("thread-two");
    done.fetch_add(1);
  });
  t1.join();
  t2.join();
  detail::Trace::Emit("thread-main");
  const auto events = detail::Trace::Drain();
  uint32_t one = 0, two = 0, main_id = 0;
  for (const TraceEvent& e : events) {
    const std::string p = e.point;
    if (p == "thread-one") one = e.thread;
    if (p == "thread-two") two = e.thread;
    if (p == "thread-main") main_id = e.thread;
  }
  EXPECT_NE(one, two);
  EXPECT_NE(one, main_id);
  EXPECT_NE(two, main_id);
}

// Emits racing Drain must be safe (TSan validates); the drain sees a
// consistent-enough view — every event it returns has a valid point.
TEST_F(TraceRingTest, ConcurrentEmitAndDrainAreSafe) {
  detail::Trace::Enable(128);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        detail::Trace::Emit("racing", uint64_t(t), i++);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    for (const TraceEvent& e : detail::Trace::Drain()) {
      ASSERT_NE(e.point, nullptr);
    }
  }
  stop.store(true);
  for (auto& t : emitters) t.join();
}

TEST_F(TraceRingTest, DumpTextContainsPointAndArgs) {
  detail::Trace::Enable(64);
  detail::Trace::Emit("dumped-point", 123, 456);
  const std::string text = detail::Trace::DumpText();
  EXPECT_NE(text.find("dumped-point"), std::string::npos);
  EXPECT_NE(text.find("123"), std::string::npos);
  EXPECT_NE(text.find("456"), std::string::npos);
}

TEST_F(TraceRingTest, NoopTraceIsInert) {
  noop::Trace::Enable(64);
  EXPECT_FALSE(noop::Trace::enabled());
  noop::Trace::Emit("nothing", 1, 2);
  EXPECT_TRUE(noop::Trace::Drain().empty());
  EXPECT_EQ(noop::Trace::DumpText(), "");
}

}  // namespace
}  // namespace exhash::metrics
