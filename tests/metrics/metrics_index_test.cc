// MetricsIndex: the metering KeyValueIndex adapter (DESIGN.md §8).  Checks
// transparent forwarding, per-op counters, sampled latency histograms, and
// the prefix naming contract.

#include "metrics/metrics_index.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/ellis_v2.h"
#include "core/options.h"
#include "metrics/registry.h"

namespace exhash::metrics {
namespace {

core::TableOptions SmallTable() {
  core::TableOptions options;
  options.page_size = 256;
  options.initial_depth = 2;
  return options;
}

TEST(MetricsIndexTest, ForwardsOperationsFaithfully) {
  core::EllisHashTableV2 table(SmallTable());
  Registry registry;
  MetricsIndex index(&table, &registry, "t");

  EXPECT_TRUE(index.Insert(1, 100));
  EXPECT_TRUE(index.Insert(2, 200));
  EXPECT_FALSE(index.Insert(1, 999)) << "duplicate insert must forward";
  uint64_t value = 0;
  EXPECT_TRUE(index.Find(1, &value));
  EXPECT_EQ(value, 100u);
  EXPECT_FALSE(index.Find(3, nullptr));
  EXPECT_TRUE(index.Remove(2));
  EXPECT_FALSE(index.Remove(2));
  EXPECT_EQ(index.Size(), 1u);
  EXPECT_EQ(index.Size(), table.Size());
}

TEST(MetricsIndexTest, NameAndDepthComeFromBase) {
  core::EllisHashTableV2 table(SmallTable());
  Registry registry;
  MetricsIndex index(&table, &registry, "t");
  EXPECT_EQ(index.Name(), table.Name() + "+metrics");
  EXPECT_EQ(index.Depth(), table.Depth());
}

// The remaining tests assert on registry contents, which only exist when
// the subsystem is compiled in; in EXHASH_METRICS=OFF builds the wrapper's
// contract is pure forwarding, covered above.
#if EXHASH_METRICS_ENABLED

TEST(MetricsIndexTest, CountsEveryOperation) {
  core::EllisHashTableV2 table(SmallTable());
  Registry registry;
  MetricsIndex index(&table, &registry, "v2");

  for (uint64_t k = 0; k < 100; ++k) index.Insert(k, k);
  for (uint64_t k = 0; k < 150; ++k) index.Find(k, nullptr);
  for (uint64_t k = 0; k < 40; ++k) index.Remove(k);

  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("v2.insert.ops"), 100u);
  EXPECT_EQ(snap.counters.at("v2.find.ops"), 150u);
  EXPECT_EQ(snap.counters.at("v2.remove.ops"), 40u);
}

TEST(MetricsIndexTest, SampleEveryOneTimesEveryOp) {
  core::EllisHashTableV2 table(SmallTable());
  Registry registry;
  MetricsIndex index(&table, &registry, "s", /*sample_every=*/1);
  for (uint64_t k = 0; k < 50; ++k) index.Insert(k, k);
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("s.insert.latency_ns").count, 50u);
}

TEST(MetricsIndexTest, SampleEveryZeroDisablesLatency) {
  core::EllisHashTableV2 table(SmallTable());
  Registry registry;
  MetricsIndex index(&table, &registry, "z", /*sample_every=*/0);
  for (uint64_t k = 0; k < 50; ++k) index.Insert(k, k);
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("z.insert.latency_ns").count, 0u)
      << "sample_every=0 must disable latency timing entirely";
  EXPECT_EQ(snap.counters.at("z.insert.ops"), 50u)
      << "...but op counting always runs";
}

TEST(MetricsIndexTest, TwoWrappersShareInternedMetrics) {
  core::EllisHashTableV2 a(SmallTable());
  core::EllisHashTableV2 b(SmallTable());
  Registry registry;
  MetricsIndex wrap_a(&a, &registry, "same");
  MetricsIndex wrap_b(&b, &registry, "same");
  wrap_a.Insert(1, 1);
  wrap_b.Insert(2, 2);
  // Same prefix -> same interned counters: contributions accumulate.
  EXPECT_EQ(registry.TakeSnapshot().counters.at("same.insert.ops"), 2u);
}

TEST(MetricsIndexTest, SnapshotDeltaIsolatesAPhase) {
  core::EllisHashTableV2 table(SmallTable());
  Registry registry;
  MetricsIndex index(&table, &registry, "d");
  for (uint64_t k = 0; k < 500; ++k) index.Insert(k, k);  // preload

  const Snapshot before = registry.TakeSnapshot();
  for (uint64_t k = 0; k < 200; ++k) index.Find(k, nullptr);
  const Snapshot delta = registry.TakeSnapshot().Delta(before);

  EXPECT_EQ(delta.counters.at("d.find.ops"), 200u);
  EXPECT_EQ(delta.counters.at("d.insert.ops"), 0u)
      << "preload inserts must not leak into the delta";
}

#endif  // EXHASH_METRICS_ENABLED

}  // namespace
}  // namespace exhash::metrics
