// HotBucketTracker unit tests (DESIGN.md §10): windowed detection
// mechanics in isolation — marking at the share threshold, exactly-once
// mark consumption, cold-page mark decay, the warm-TTL merge hysteresis,
// the sampling countdown's exact arithmetic, and the stats/histogram
// export the registry provider reads.

#include "metrics/hot_metrics.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace exhash::metrics {
namespace {

// window=16 @ share=0.5: hot threshold 8 samples, warmth threshold 2.
HotBucketTracker::Options ExactOptions() {
  HotBucketTracker::Options o;
  o.sample_every = 1;
  o.window = 16;
  o.share = 0.5;
  return o;
}

void Drive(HotBucketTracker* t, storage::PageId page, int n) {
  for (int i = 0; i < n; ++i) t->Record(page);
}

TEST(HotBucketTrackerTest, MarksOnlyPagesCrossingTheShareThreshold) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 10);  // 10/16 >= 0.5: hot
  Drive(&t, 2, 6);   // 6/16 < 0.5: not hot (but warm, 6 >= 2)
  const HotBucketStats s = t.stats();
  EXPECT_EQ(s.sampled, 16u);
  EXPECT_EQ(s.windows, 1u);
  EXPECT_EQ(s.marks, 1u);
  EXPECT_EQ(s.top_count, 10u);
  EXPECT_EQ(s.hot_now, 1u);
  EXPECT_TRUE(t.IsHot(1));
  EXPECT_FALSE(t.IsHot(2));
  EXPECT_FALSE(t.IsHot(3));  // never sampled: no slot, never hot
}

TEST(HotBucketTrackerTest, ConsumeHotHandsTheMarkToExactlyOneCaller) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 16);
  ASSERT_TRUE(t.IsHot(1));
  EXPECT_TRUE(t.ConsumeHot(1));
  EXPECT_FALSE(t.ConsumeHot(1));  // second claimant loses
  EXPECT_FALSE(t.IsHot(1));       // consuming unmarks
  EXPECT_FALSE(t.ConsumeHot(99));  // unknown page: nothing to claim
  const HotBucketStats s = t.stats();
  EXPECT_EQ(s.marks, 1u);
  EXPECT_EQ(s.consumed, 1u);
  EXPECT_EQ(s.hot_now, 0u);
}

TEST(HotBucketTrackerTest, UnconsumedMarkClearsOnceThePageGoesCold) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 16);
  ASSERT_TRUE(t.IsHot(1));
  // A whole window elsewhere: page 1 contributes zero samples, so the
  // stale mark must not linger to bias-split an idle bucket.
  Drive(&t, 2, 16);
  EXPECT_FALSE(t.IsHot(1));
  EXPECT_TRUE(t.IsHot(2));
}

TEST(HotBucketTrackerTest, BelowThresholdWindowUnmarksAStillActivePage) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 16);
  ASSERT_TRUE(t.IsHot(1));
  // Next window the page is active but below the share: cooled off.
  Drive(&t, 1, 4);
  Drive(&t, 2, 12);
  EXPECT_FALSE(t.IsHot(1));
}

TEST(HotBucketTrackerTest, MarkReArmsIfALaterWindowIsHotAgain) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 16);
  ASSERT_TRUE(t.ConsumeHot(1));
  Drive(&t, 1, 16);  // still hot next window: a fresh mark
  EXPECT_TRUE(t.IsHot(1));
  EXPECT_TRUE(t.ConsumeHot(1));
  EXPECT_EQ(t.stats().consumed, 2u);
}

TEST(HotBucketTrackerTest, WarmthOutlivesTheMarkByTtlQuietWindows) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 16);
  EXPECT_TRUE(t.IsWarm(1));
  ASSERT_TRUE(t.ConsumeHot(1));  // mark consumed; warmth is independent
  // Quiet windows: page 1 silent, all traffic on page 2.  Warmth decays
  // one TTL tick per rotation and must survive several quiet windows
  // (skew is bursty; one lull must not forfeit the spread to merging).
  for (int w = 0; w < 7; ++w) {
    Drive(&t, 2, 16);
    EXPECT_TRUE(t.IsWarm(1)) << "lapsed after " << (w + 1) << " windows";
  }
  Drive(&t, 2, 16);  // 8th quiet window: TTL exhausted
  EXPECT_FALSE(t.IsWarm(1));
  EXPECT_FALSE(t.IsWarm(3));  // never sampled: never warm
}

TEST(HotBucketTrackerTest, WarmthRefreshesOnAnyWarmThresholdWindow) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 16);
  ASSERT_TRUE(t.IsWarm(1));
  // Drain most of the TTL...
  for (int w = 0; w < 6; ++w) Drive(&t, 2, 16);
  ASSERT_TRUE(t.IsWarm(1));
  // ...then one window at warmth level (2 >= threshold/4) — far below the
  // hot threshold — snaps the TTL back to full.
  Drive(&t, 1, 2);
  Drive(&t, 2, 14);
  EXPECT_FALSE(t.IsHot(1));
  for (int w = 0; w < 7; ++w) {
    Drive(&t, 2, 16);
    EXPECT_TRUE(t.IsWarm(1)) << "refresh did not reset TTL, window " << w;
  }
  Drive(&t, 2, 16);
  EXPECT_FALSE(t.IsWarm(1));
}

TEST(HotBucketTrackerTest, WarmNowCountsPagesUnderHysteresis) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 8);
  Drive(&t, 2, 8);
  const HotBucketStats s = t.stats();
  EXPECT_EQ(s.warm_now, 2u);
  EXPECT_EQ(s.hot_now, 2u);  // both at exactly the threshold
}

TEST(HotBucketTrackerTest, SamplingCountdownKeepsExactArithmetic) {
  HotBucketTracker::Options o = ExactOptions();
  o.sample_every = 4;
  HotBucketTracker t(o);
  // The countdown is thread-local and phase-shared across trackers, but
  // any run of 4k consecutive calls contains exactly k multiples of 4.
  Drive(&t, 1, 64);
  EXPECT_EQ(t.stats().sampled, 16u);
}

TEST(HotBucketTrackerTest, BucketOpsHistogramSeesPerWindowCounts) {
  HotBucketTracker t(ExactOptions());
  Drive(&t, 1, 10);
  Drive(&t, 2, 6);
  // One Add per live counter per rotation.
  EXPECT_EQ(t.bucket_ops().count(), 2u);
  EXPECT_EQ(t.bucket_ops().max(), 10u);
  Drive(&t, 1, 16);
  EXPECT_EQ(t.bucket_ops().count(), 3u);
  EXPECT_EQ(t.bucket_ops().max(), 16u);
}

TEST(HotBucketTrackerTest, DegenerateOptionsAreClamped) {
  HotBucketTracker::Options o;
  o.sample_every = 0;  // clamped to 1 (exact)
  o.window = 0;        // clamped to 1: every sample is a window
  o.share = 0.5;
  HotBucketTracker t(o);
  t.Record(1);
  const HotBucketStats s = t.stats();
  EXPECT_EQ(s.sampled, 1u);
  EXPECT_EQ(s.windows, 1u);
  EXPECT_TRUE(t.IsHot(1));
}

TEST(HotBucketTrackerTest, PagesInDistinctChunksTrackIndependently) {
  // Slot addressing is chunked (256 counters per CAS-published chunk);
  // pages far apart land in different chunks and must not alias.
  HotBucketTracker t(ExactOptions());
  const storage::PageId far = 5 * 256 + 7;
  Drive(&t, far, 12);
  Drive(&t, 1, 4);
  EXPECT_TRUE(t.IsHot(far));
  EXPECT_FALSE(t.IsHot(1));
  EXPECT_EQ(t.stats().top_count, 12u);
}

}  // namespace
}  // namespace exhash::metrics
