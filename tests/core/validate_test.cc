// The validator itself must catch corruption — otherwise every "Validate
// passed" assertion in the suite is vacuous.  Each test builds a correct
// little file, breaks one invariant surgically, and expects a diagnosis.

#include "core/validate.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/directory.h"
#include "core/sequential_hash.h"
#include "storage/bucket.h"
#include "storage/page_store.h"
#include "util/pseudokey.h"

namespace exhash::core {
namespace {

constexpr size_t kPageSize = 112;  // capacity 4

// A hand-built two-bucket file (depth 1) we can corrupt at will.
class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest()
      : store_({.page_size = kPageSize}),
        dir_(1, 8),
        capacity_(storage::Bucket::CapacityFor(kPageSize)) {
    page0_ = store_.Alloc();
    page1_ = store_.Alloc();
    storage::Bucket b0(capacity_);
    b0.localdepth = 1;
    b0.commonbits = 0;
    b0.next = page1_;
    storage::Bucket b1(capacity_);
    b1.localdepth = 1;
    b1.commonbits = 1;
    b1.prev = page0_;
    Put(page0_, b0);
    Put(page1_, b1);
    dir_.SetEntry(0, page0_);
    dir_.SetEntry(1, page1_);
    dir_.set_depthcount(2);
  }

  void Put(storage::PageId page, const storage::Bucket& b) {
    std::vector<std::byte> buf(kPageSize);
    b.SerializeTo(buf.data(), kPageSize);
    store_.Write(page, buf.data());
  }

  storage::Bucket Get(storage::PageId page) {
    std::vector<std::byte> buf(kPageSize);
    store_.Read(page, buf.data());
    storage::Bucket b(capacity_);
    EXPECT_TRUE(storage::Bucket::DeserializeFrom(buf.data(), kPageSize, &b));
    return b;
  }

  bool Validate(uint64_t expected_size, std::string* error) {
    return ValidateStructure(dir_, store_, hasher_, capacity_, kPageSize,
                             expected_size, error);
  }

  // Adds a key that belongs in bucket `bit` (low pseudokey bit == bit).
  uint64_t KeyForBucket(int bit, int salt = 0) {
    uint64_t k = salt;
    while (int(hasher_.Hash(k) & 1) != bit) ++k;
    return k;
  }

  util::Mix64Hasher hasher_;
  storage::PageStore store_;
  Directory dir_;
  int capacity_;
  storage::PageId page0_;
  storage::PageId page1_;
};

TEST_F(ValidateTest, CleanStructurePasses) {
  std::string error;
  EXPECT_TRUE(Validate(0, &error)) << error;
}

TEST_F(ValidateTest, DetectsWrongRecordCount) {
  std::string error;
  EXPECT_FALSE(Validate(3, &error));
  EXPECT_NE(error.find("expected size"), std::string::npos);
}

TEST_F(ValidateTest, DetectsMisplacedKey) {
  storage::Bucket b0 = Get(page0_);
  b0.Add(KeyForBucket(1), 9);  // belongs in bucket 1
  Put(page0_, b0);
  std::string error;
  EXPECT_FALSE(Validate(1, &error));
  EXPECT_NE(error.find("does not belong"), std::string::npos);
}

TEST_F(ValidateTest, DetectsDuplicateKeyAcrossBuckets) {
  // Force the same key into both buckets (bucket 1's copy is misplaced,
  // but the duplicate check may fire first on bucket order — accept either
  // diagnosis).
  const uint64_t k = KeyForBucket(0);
  storage::Bucket b0 = Get(page0_);
  b0.Add(k, 1);
  Put(page0_, b0);
  storage::Bucket b1 = Get(page1_);
  b1.Add(k, 2);
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(Validate(2, &error));
}

TEST_F(ValidateTest, DetectsWrongCommonbits) {
  storage::Bucket b1 = Get(page1_);
  b1.commonbits = 0;  // lies about its pattern
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
}

TEST_F(ValidateTest, DetectsTombstoneInDirectory) {
  storage::Bucket b1 = Get(page1_);
  b1.deleted = true;
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
  EXPECT_NE(error.find("tombstone"), std::string::npos);
}

TEST_F(ValidateTest, DetectsWrongDepthcount) {
  dir_.set_depthcount(0);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
  EXPECT_NE(error.find("depthcount"), std::string::npos);
}

TEST_F(ValidateTest, DetectsBrokenChain) {
  storage::Bucket b0 = Get(page0_);
  b0.next = storage::kInvalidPage;  // drops bucket 1 from the chain
  Put(page0_, b0);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
}

TEST_F(ValidateTest, DetectsChainCycle) {
  storage::Bucket b1 = Get(page1_);
  b1.next = page0_;  // back edge
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
}

TEST_F(ValidateTest, DetectsStalePrevLink) {
  storage::Bucket b1 = Get(page1_);
  b1.prev = page1_;  // should address the "0" partner
  Put(page1_, b1);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
  EXPECT_NE(error.find("prev"), std::string::npos);
}

TEST_F(ValidateTest, DetectsInvalidDirectoryEntry) {
  dir_.SetEntry(1, storage::kInvalidPage);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
}

TEST_F(ValidateTest, DetectsLocaldepthBeyondDepth) {
  storage::Bucket b0 = Get(page0_);
  b0.localdepth = 5;
  Put(page0_, b0);
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
}

TEST_F(ValidateTest, DetectsEntryPointingAtWrongBucket) {
  dir_.SetEntry(0, page1_);  // both entries now point at bucket 1
  std::string error;
  EXPECT_FALSE(Validate(0, &error));
}

// End-to-end: the validator accepts every state a real table moves through.
TEST(ValidateIntegrationTest, AcceptsEveryQuiescentStateOfARealTable) {
  TableOptions options;
  options.page_size = kPageSize;
  options.initial_depth = 1;
  SequentialExtendibleHash table(options);
  std::string error;
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(table.Insert(k, k));
    if (k % 37 == 0) {
      ASSERT_TRUE(table.Validate(&error)) << "insert " << k << ": " << error;
    }
  }
  for (uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(table.Remove(k));
    if (k % 37 == 0) {
      ASSERT_TRUE(table.Validate(&error)) << "remove " << k << ": " << error;
    }
  }
}

}  // namespace
}  // namespace exhash::core
