// Property sweeps: the oracle workload across the cross product of
// page size × initial depth × key distribution, on the V2 table (the most
// intricate protocol).  Each configuration must preserve exact map
// semantics and pass full structural validation at the end.

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>

#include "core/ellis_v2.h"
#include "workload/workload.h"

namespace exhash::core {
namespace {

using Param = std::tuple<size_t /*page*/, int /*depth0*/, workload::KeyDist>;

class PropertySweepTest : public ::testing::TestWithParam<Param> {};

TEST_P(PropertySweepTest, OracleAndValidation) {
  const auto [page_size, depth0, dist] = GetParam();
  TableOptions options;
  options.page_size = page_size;
  options.initial_depth = depth0;
  options.max_depth = 20;
  options.poison_on_dealloc = true;
  EllisHashTableV2 table(options);

  workload::WorkloadGenerator gen({.key_space = 600,
                                   .dist = dist,
                                   .mix = {20, 50, 30},
                                   .seed = page_size * 31 + uint64_t(depth0)},
                                  0);
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 6000; ++i) {
    const workload::Op op = gen.Next();
    switch (op.type) {
      case workload::Op::Type::kInsert: {
        const bool expect = oracle.find(op.key) == oracle.end();
        ASSERT_EQ(table.Insert(op.key, op.key ^ 0xff), expect) << "op " << i;
        if (expect) oracle[op.key] = op.key ^ 0xff;
        break;
      }
      case workload::Op::Type::kRemove:
        ASSERT_EQ(table.Remove(op.key), oracle.erase(op.key) > 0)
            << "op " << i;
        break;
      case workload::Op::Type::kFind: {
        uint64_t v = 0;
        const bool found = table.Find(op.key, &v);
        const auto it = oracle.find(op.key);
        ASSERT_EQ(found, it != oracle.end()) << "op " << i;
        if (found) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(table.Size(), oracle.size());
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;

  // Scan agreement: ForEachRecord must reproduce the oracle exactly.
  std::unordered_map<uint64_t, uint64_t> scanned;
  table.ForEachRecord(
      [&scanned](uint64_t k, uint64_t v) { scanned[k] = v; });
  ASSERT_EQ(scanned.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(scanned.at(k), v);
  }

  // Snapshot-directory laws (DESIGN.md §4d) at quiescence: version counts
  // every publish, and live buckets match the restructure counters.
  const TableStats stats = table.Stats();
  ASSERT_EQ(table.SnapshotVersion(), table.SnapshotPublishes());
  ASSERT_GE(table.SnapshotVersion(),
            1 + stats.doublings + stats.halvings + stats.splits);
  ASSERT_EQ(table.LiveBuckets(),
            (uint64_t{1} << depth0) + stats.splits - stats.merges);

  // Drain to empty: the structure must come back down through merges with
  // every law still holding.
  for (const auto& [k, v] : oracle) {
    ASSERT_TRUE(table.Remove(k)) << k;
  }
  ASSERT_EQ(table.Size(), 0u);
  ASSERT_TRUE(table.Validate(&error)) << error;
  const TableStats end = table.Stats();
  ASSERT_EQ(table.SnapshotVersion(), table.SnapshotPublishes());
  ASSERT_EQ(table.LiveBuckets(),
            (uint64_t{1} << depth0) + end.splits - end.merges);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertySweepTest,
    ::testing::Combine(
        ::testing::Values(size_t(112), size_t(256), size_t(1024)),
        ::testing::Values(1, 3),
        ::testing::Values(workload::KeyDist::kUniform,
                          workload::KeyDist::kZipf,
                          workload::KeyDist::kSequential,
                          workload::KeyDist::kColliding)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "page" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_" +
             workload::ToString(std::get<2>(info.param));
    });

}  // namespace
}  // namespace exhash::core
