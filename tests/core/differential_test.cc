// Property-based differential testing: both concurrent protocols and the
// sequential baseline, fed one identical randomized op stream, must agree
// with each other and with a std::map reference at every step — through
// directory doublings on the way up and merges/halvings on the way down.
// Any divergence in return value, found value, or size is a protocol bug
// even if every structure stays internally valid.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/ellis_v1.h"
#include "core/ellis_v2.h"
#include "core/sequential_hash.h"
#include "util/random.h"

namespace exhash::core {
namespace {

TableOptions SmallOptions() {
  TableOptions options;
  options.page_size = 112;  // capacity 4
  options.initial_depth = 1;
  options.max_depth = 16;
  return options;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  DifferentialTest()
      : v1_(SmallOptions()), v2_(SmallOptions()), seq_(SmallOptions()) {}

  KeyValueIndex* tables_[3] = {&v1_, &v2_, &seq_};

  void Insert(uint64_t key, uint64_t value) {
    const bool expect = model_.emplace(key, value).second;
    for (KeyValueIndex* t : tables_) {
      ASSERT_EQ(t->Insert(key, value), expect)
          << t->Name() << " Insert(" << key << ") diverged at op " << ops_;
    }
    ++ops_;
  }

  void Find(uint64_t key) {
    const auto it = model_.find(key);
    const bool expect = it != model_.end();
    for (KeyValueIndex* t : tables_) {
      uint64_t out = 0;
      ASSERT_EQ(t->Find(key, &out), expect)
          << t->Name() << " Find(" << key << ") diverged at op " << ops_;
      if (expect) {
        ASSERT_EQ(out, it->second)
            << t->Name() << " Find(" << key << ") wrong value at op " << ops_;
      }
    }
    ++ops_;
  }

  void Remove(uint64_t key) {
    const bool expect = model_.erase(key) != 0;
    for (KeyValueIndex* t : tables_) {
      ASSERT_EQ(t->Remove(key), expect)
          << t->Name() << " Remove(" << key << ") diverged at op " << ops_;
    }
    ++ops_;
  }

  void CheckState() {
    std::string error;
    for (KeyValueIndex* t : tables_) {
      ASSERT_EQ(t->Size(), model_.size()) << t->Name() << " at op " << ops_;
      ASSERT_TRUE(t->Validate(&error))
          << t->Name() << " at op " << ops_ << ": " << error;
    }
    CheckStructureLaws();
  }

  // Exported-structure cross-checks for the snapshot directory (DESIGN.md
  // §4d), asserted at every quiescent point:
  //   * the live snapshot's version counts every publish since construction
  //     (a publish that skipped the version bump, or a version bump without
  //     a publish, breaks reader recovery reasoning);
  //   * live buckets obey 2^initial_depth + splits - merges — the counter
  //     and the chain must tell the same story.
  void CheckStructureLaws() {
    TableBase* concurrent[2] = {&v1_, &v2_};
    for (TableBase* t : concurrent) {
      const TableStats s = t->Stats();
      ASSERT_EQ(t->SnapshotVersion(), t->SnapshotPublishes())
          << t->Name() << " at op " << ops_;
      ASSERT_GE(t->SnapshotVersion(),
                1 + s.doublings + s.halvings + s.splits)
          << t->Name() << " at op " << ops_;
      ASSERT_EQ(t->LiveBuckets(), 2 + s.splits - s.merges)
          << t->Name() << " at op " << ops_;
    }
  }

  EllisHashTableV1 v1_;
  EllisHashTableV2 v2_;
  SequentialExtendibleHash seq_;
  std::map<uint64_t, uint64_t> model_;
  uint64_t ops_ = 0;
};

TEST_P(DifferentialTest, GrowThenShrinkAgreesEverywhere) {
  util::Rng rng(GetParam());
  constexpr uint64_t kKeySpace = 96;  // depth ~5 at peak with capacity 4

  // Grow phase: insert-heavy, through several doublings.
  for (int i = 0; i < 600; ++i) {
    const uint64_t key = rng.Uniform(kKeySpace);
    const double roll = rng.NextDouble();
    if (roll < 0.70) {
      Insert(key, rng.Next());
    } else if (roll < 0.90) {
      Find(key);
    } else {
      Remove(key);
    }
    if (i % 64 == 0) CheckState();
  }
  CheckState();
  // The grow phase must exercise repeated directory growth in every
  // implementation, not just "a" doubling (key space 96 at capacity 4
  // reaches depth ~5 from 1).
  EXPECT_GE(v1_.Stats().doublings, 3u);
  EXPECT_GE(v2_.Stats().doublings, 3u);
  EXPECT_GE(seq_.Stats().doublings, 3u);

  // Shrink phase: remove-heavy, through merges.
  for (int i = 0; i < 600; ++i) {
    const uint64_t key = rng.Uniform(kKeySpace);
    const double roll = rng.NextDouble();
    if (roll < 0.70) {
      Remove(key);
    } else if (roll < 0.90) {
      Find(key);
    } else {
      Insert(key, rng.Next());
    }
    if (i % 64 == 0) CheckState();
  }

  // Full drain: every implementation must come back down through halvings
  // to an empty, still-valid file.
  while (!model_.empty()) Remove(model_.begin()->first);
  CheckState();
  // And back down: repeated halvings, in every implementation.
  EXPECT_GT(v1_.Stats().merges, 0u);
  EXPECT_GT(v2_.Stats().merges, 0u);
  EXPECT_GT(seq_.Stats().merges, 0u);
  EXPECT_GE(v1_.Stats().halvings, 2u);
  EXPECT_GE(v2_.Stats().halvings, 2u);
  EXPECT_GE(seq_.Stats().halvings, 2u);
  for (KeyValueIndex* t : tables_) EXPECT_EQ(t->Size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// Paged differential (DESIGN.md §11): the same randomized grow/shrink
// stream against a std::map reference, but with the page budget ≈ 1/8 of
// the pages the run peaks at — every bucket access may fault, every fault
// may evict, and none of it may change a single answer.  Quiescent points
// assert Validate, the bucket accounting law, and the pool's own laws
// (hits + misses == frame_reads; pin ledger balanced).
class PagedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagedDifferentialTest, PagedV2AgreesWithTheModel) {
  TableOptions options = SmallOptions();
  options.page_budget = 8;  // peak is ~50-60 pages at key space 96
  EllisHashTableV2 table(options);
  std::map<uint64_t, uint64_t> model;
  util::Rng rng(GetParam());
  constexpr uint64_t kKeySpace = 96;

  uint64_t ops = 0;
  const auto check_quiescent = [&] {
    ASSERT_EQ(table.Size(), model.size()) << "op " << ops;
    std::string error;
    ASSERT_TRUE(table.Validate(&error)) << "op " << ops << ": " << error;
    const TableStats s = table.Stats();
    ASSERT_EQ(table.LiveBuckets(), 2 + s.splits - s.merges) << "op " << ops;
    const storage::PageStoreStats io = table.Store().stats();
    ASSERT_EQ(io.pool_hits + io.pool_misses, io.frame_reads) << "op " << ops;
    ASSERT_EQ(io.pool_pins_acquired, io.pool_pins_released) << "op " << ops;
  };

  const auto step = [&](double insert_p, double find_p) {
    const uint64_t key = rng.Uniform(kKeySpace);
    const double roll = rng.NextDouble();
    if (roll < insert_p) {
      const uint64_t value = rng.Next();
      const bool expect = model.emplace(key, value).second;
      ASSERT_EQ(table.Insert(key, value), expect) << "op " << ops;
    } else if (roll < insert_p + find_p) {
      uint64_t out = 0;
      const auto it = model.find(key);
      ASSERT_EQ(table.Find(key, &out), it != model.end()) << "op " << ops;
      if (it != model.end()) ASSERT_EQ(out, it->second) << "op " << ops;
    } else {
      ASSERT_EQ(table.Remove(key), model.erase(key) != 0) << "op " << ops;
    }
    ++ops;
  };

  for (int i = 0; i < 600; ++i) {  // grow: insert-heavy
    step(/*insert_p=*/0.70, /*find_p=*/0.20);
    if (i % 64 == 0) check_quiescent();
  }
  check_quiescent();
  for (int i = 0; i < 600; ++i) {  // shrink: remove-heavy
    step(/*insert_p=*/0.10, /*find_p=*/0.20);
    if (i % 64 == 0) check_quiescent();
  }
  while (!model.empty()) {
    const uint64_t key = model.begin()->first;
    ASSERT_TRUE(table.Remove(key));
    model.erase(key);
  }
  check_quiescent();
  // The budget genuinely bit: the run thrashed, it didn't just fit.
  EXPECT_GT(table.Store().stats().pool_evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagedDifferentialTest,
                         ::testing::Values(55u, 66u));

}  // namespace
}  // namespace exhash::core
