#include "core/sequential_hash.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/pseudokey.h"
#include "util/random.h"

namespace exhash::core {
namespace {

TableOptions SmallOptions() {
  TableOptions options;
  options.page_size = 112;  // capacity 4: frequent splits
  options.initial_depth = 1;
  options.max_depth = 18;
  return options;
}

TEST(SequentialHashTest, EmptyTable) {
  SequentialExtendibleHash table(SmallOptions());
  EXPECT_EQ(table.Size(), 0u);
  EXPECT_EQ(table.Depth(), 1);
  EXPECT_FALSE(table.Find(1, nullptr));
  std::string error;
  EXPECT_TRUE(table.Validate(&error)) << error;
}

TEST(SequentialHashTest, InsertFindRemove) {
  SequentialExtendibleHash table(SmallOptions());
  EXPECT_TRUE(table.Insert(1, 10));
  EXPECT_TRUE(table.Insert(2, 20));
  EXPECT_FALSE(table.Insert(1, 99));  // duplicate
  uint64_t v = 0;
  EXPECT_TRUE(table.Find(1, &v));
  EXPECT_EQ(v, 10u);  // original value kept
  EXPECT_TRUE(table.Remove(1));
  EXPECT_FALSE(table.Remove(1));
  EXPECT_FALSE(table.Find(1, &v));
  EXPECT_EQ(table.Size(), 1u);
}

TEST(SequentialHashTest, GrowthSplitsAndDoubles) {
  SequentialExtendibleHash table(SmallOptions());
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  EXPECT_EQ(table.Size(), 1000u);
  const TableStats s = table.Stats();
  EXPECT_GT(s.splits, 0u);
  EXPECT_GT(s.doublings, 0u);
  EXPECT_GT(table.Depth(), 3);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(table.Find(k, &v)) << k;
    ASSERT_EQ(v, k);
  }
}

TEST(SequentialHashTest, ShrinkMergesAndHalves) {
  SequentialExtendibleHash table(SmallOptions());
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(table.Insert(k, k));
  const int grown_depth = table.Depth();
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(table.Remove(k));
  EXPECT_EQ(table.Size(), 0u);
  const TableStats s = table.Stats();
  EXPECT_GT(s.merges, 0u);
  EXPECT_GT(s.halvings, 0u);
  EXPECT_LT(table.Depth(), grown_depth);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
}

TEST(SequentialHashTest, OracleComparisonRandomOps) {
  SequentialExtendibleHash table(SmallOptions());
  std::unordered_map<uint64_t, uint64_t> oracle;
  util::Rng rng(17);
  constexpr uint64_t kKeySpace = 500;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.Uniform(kKeySpace);
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted = table.Insert(key, key * 7);
        EXPECT_EQ(inserted, oracle.emplace(key, key * 7).second);
        break;
      }
      case 1: {
        const bool removed = table.Remove(key);
        EXPECT_EQ(removed, oracle.erase(key) > 0);
        break;
      }
      case 2: {
        uint64_t v = 0;
        const bool found = table.Find(key, &v);
        const auto it = oracle.find(key);
        EXPECT_EQ(found, it != oracle.end());
        if (found) {
          EXPECT_EQ(v, it->second);
        }
        break;
      }
    }
    if (i % 2500 == 0) {
      std::string error;
      ASSERT_TRUE(table.Validate(&error)) << "op " << i << ": " << error;
      ASSERT_EQ(table.Size(), oracle.size());
    }
  }
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
  for (const auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(table.Find(k, &got));
    ASSERT_EQ(got, v);
  }
}

// With the identity hasher we can steer keys into chosen buckets and
// reproduce the paper's structural transitions (Figure 2) exactly.
TEST(SequentialHashTest, IdentityHasherSplitScenario) {
  util::IdentityHasher identity;
  TableOptions options;
  options.page_size = 112;  // capacity 4
  options.initial_depth = 1;
  options.hasher = &identity;
  SequentialExtendibleHash table(options);

  // Fill the "...0" bucket: keys 0b0000, 0b0010, 0b0100, 0b0110.
  for (uint64_t k : {0b0000u, 0b0010u, 0b0100u, 0b0110u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  EXPECT_EQ(table.Depth(), 1);
  // A fifth even key forces the "0" bucket to split; its localdepth equals
  // depth, so the directory doubles: depth 1 -> 2.
  ASSERT_TRUE(table.Insert(0b1000, 0b1000));
  EXPECT_EQ(table.Depth(), 2);
  EXPECT_EQ(table.Stats().splits, 1u);
  EXPECT_EQ(table.Stats().doublings, 1u);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;

  // Deleting down to single records merges the pair back and halves.
  for (uint64_t k : {0b0000u, 0b0010u, 0b0100u, 0b0110u}) {
    ASSERT_TRUE(table.Remove(k));
  }
  ASSERT_TRUE(table.Remove(0b1000));
  ASSERT_TRUE(table.Validate(&error)) << error;
  EXPECT_GT(table.Stats().merges, 0u);
}

TEST(SequentialHashTest, MergingDisabledNeverMerges) {
  TableOptions options = SmallOptions();
  options.enable_merging = false;
  SequentialExtendibleHash table(options);
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(table.Insert(k, k));
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(table.Remove(k));
  EXPECT_EQ(table.Stats().merges, 0u);
  EXPECT_EQ(table.Stats().halvings, 0u);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
}

TEST(SequentialHashTest, InsertRetryOnSkewedSplit) {
  // Identity hasher + keys that all extend the same bit pattern force
  // repeated splits where every record lands in one half (the paper's
  // `if (!done) insert(z)` path).
  util::IdentityHasher identity;
  TableOptions options;
  options.page_size = 112;  // capacity 4
  options.initial_depth = 1;
  options.max_depth = 16;
  options.hasher = &identity;
  SequentialExtendibleHash table(options);
  // Keys k << 8: low 8 bits all zero — they stay together until depth > 8.
  for (uint64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(table.Insert(k << 8, k));
  }
  EXPECT_GT(table.Stats().insert_retries, 0u);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
  for (uint64_t k = 0; k < 5; ++k) {
    EXPECT_TRUE(table.Find(k << 8, nullptr));
  }
}

TEST(SequentialHashTest, IoCountersAdvance) {
  SequentialExtendibleHash table(SmallOptions());
  for (uint64_t k = 0; k < 100; ++k) table.Insert(k, k);
  const auto io = table.IoStats();
  EXPECT_GT(io.reads, 0u);
  EXPECT_GT(io.writes, 0u);
  EXPECT_GT(io.live_pages, 2u);
}

}  // namespace
}  // namespace exhash::core
