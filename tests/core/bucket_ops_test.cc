// Properties of the split operation shared by every table variant.

#include "core/bucket_ops.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/pseudokey.h"
#include "util/random.h"

namespace exhash::core {
namespace {

using storage::Bucket;

class SplitRecordsTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitRecordsTest, PartitionIsExactAndComplete) {
  const int capacity = GetParam();
  util::Mix64Hasher hasher;
  util::Rng rng(capacity);
  for (int ld = 0; ld < 12; ++ld) {
    // Build a full bucket whose records all match a random commonbits
    // pattern at localdepth ld.
    const util::Pseudokey pattern = util::LowBits(rng.Next(), ld);
    Bucket current(capacity);
    current.localdepth = ld;
    current.commonbits = pattern;
    current.version = 7;
    current.next = 99;
    current.prev = 55;
    while (!current.full()) {
      uint64_t key = rng.Next();
      while (!util::MatchesCommonBits(hasher.Hash(key), pattern, ld)) {
        key = rng.Next();
      }
      if (!current.Search(key)) current.Add(key, key * 2);
    }
    uint64_t new_key = rng.Next();
    while (!util::MatchesCommonBits(hasher.Hash(new_key), pattern, ld) ||
           current.Search(new_key)) {
      new_key = rng.Next();
    }

    Bucket half1(capacity);
    Bucket half2(capacity);
    const bool done = SplitRecords(current, new_key, 123, hasher, /*old=*/10,
                                   /*new=*/20, &half1, &half2);

    // Structural fields.
    EXPECT_EQ(half1.localdepth, ld + 1);
    EXPECT_EQ(half2.localdepth, ld + 1);
    EXPECT_EQ(half1.commonbits, pattern);
    EXPECT_EQ(half2.commonbits,
              pattern | (util::Pseudokey{1} << ld));
    EXPECT_EQ(half1.next, 20u);       // old -> new
    EXPECT_EQ(half2.next, 99u);       // new inherits old's next
    EXPECT_EQ(half2.prev, 10u);       // split off the old page
    EXPECT_EQ(half1.prev, 55u);       // lineage preserved
    EXPECT_EQ(half1.version, 8u);
    EXPECT_EQ(half2.version, 8u);
    EXPECT_FALSE(half1.deleted);
    EXPECT_FALSE(half2.deleted);

    // Every old record lands in exactly the half its pseudokey selects.
    int found = 0;
    for (const storage::Record& r : current.records()) {
      const bool one = util::IsOnePartner(hasher.Hash(r.key), ld + 1);
      const Bucket& home = one ? half2 : half1;
      const Bucket& other = one ? half1 : half2;
      uint64_t v = 0;
      EXPECT_TRUE(home.Search(r.key, &v));
      EXPECT_EQ(v, r.value);
      EXPECT_FALSE(other.Search(r.key));
      ++found;
    }
    EXPECT_EQ(found, capacity);
    EXPECT_EQ(half1.count() + half2.count(), capacity + (done ? 1 : 0));
    if (done) {
      const bool one = util::IsOnePartner(hasher.Hash(new_key), ld + 1);
      EXPECT_TRUE((one ? half2 : half1).Search(new_key));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SplitRecordsTest,
                         ::testing::Values(1, 2, 4, 13, 61));

TEST(SplitRecordsTest, ReportsNotDoneWhenTargetHalfOverflows) {
  // Identity hasher: all records share bit (ld+1) == 0, so they all go to
  // half1 together with the new key — which then cannot fit.
  util::IdentityHasher hasher;
  Bucket current(3);
  current.localdepth = 0;
  current.commonbits = 0;
  current.Add(0b000, 1);
  current.Add(0b010, 2);
  current.Add(0b100, 3);
  Bucket half1(3);
  Bucket half2(3);
  EXPECT_FALSE(
      SplitRecords(current, 0b110, 4, hasher, 0, 1, &half1, &half2));
  EXPECT_EQ(half1.count(), 3);
  EXPECT_EQ(half2.count(), 0);
  EXPECT_FALSE(half1.Search(0b110));
}

TEST(SplitRecordsTest, NewKeyJoinsEmptyHalf) {
  util::IdentityHasher hasher;
  Bucket current(2);
  current.localdepth = 0;
  current.commonbits = 0;
  current.Add(0b00, 1);
  current.Add(0b10, 2);
  Bucket half1(2);
  Bucket half2(2);
  // New key has bit 1 set: goes alone into half2.
  EXPECT_TRUE(SplitRecords(current, 0b01, 9, hasher, 0, 1, &half1, &half2));
  EXPECT_EQ(half1.count(), 2);
  EXPECT_EQ(half2.count(), 1);
  uint64_t v = 0;
  EXPECT_TRUE(half2.Search(0b01, &v));
  EXPECT_EQ(v, 9u);
}

TEST(AtomicTableStatsTest, SnapshotReflectsCounters) {
  AtomicTableStats stats;
  stats.finds.fetch_add(3);
  stats.splits.fetch_add(2);
  stats.wrong_bucket_hops.fetch_add(5);
  const TableStats s = stats.Snapshot();
  EXPECT_EQ(s.finds, 3u);
  EXPECT_EQ(s.splits, 2u);
  EXPECT_EQ(s.wrong_bucket_hops, 5u);
  EXPECT_EQ(s.merges, 0u);
}

}  // namespace
}  // namespace exhash::core
