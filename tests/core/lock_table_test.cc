#include "core/lock_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace exhash::core {
namespace {

TEST(LockTableTest, SamePageSameLock) {
  LockTable table;
  util::RaxLock& a = table.For(42);
  util::RaxLock& b = table.For(42);
  EXPECT_EQ(&a, &b);
}

TEST(LockTableTest, DifferentPagesDifferentLocks) {
  LockTable table;
  EXPECT_NE(&table.For(1), &table.For(2));
  EXPECT_NE(&table.For(0), &table.For(256));  // different chunks
}

TEST(LockTableTest, LocksAreStableAcrossGrowth) {
  LockTable table;
  util::RaxLock* early = &table.For(5);
  early->RhoLock();
  // Force many chunk allocations.
  for (storage::PageId p = 0; p < 10000; p += 100) table.For(p);
  EXPECT_EQ(&table.For(5), early);
  early->UnRhoLock();
}

TEST(LockTableTest, ConcurrentLookupsAndGrowth) {
  LockTable table;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (storage::PageId p = 0; p < 2000; ++p) {
        util::RaxLock& lock = table.For(p * 4 + storage::PageId(t));
        lock.RhoLock();
        lock.UnRhoLock();
      }
      // Re-lookup must return identical objects.
      util::RaxLock* first = &table.For(storage::PageId(t));
      if (first != &table.For(storage::PageId(t))) failed.store(true);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

TEST(LockTableTest, AggregateStatsSumsAcrossLocks) {
  LockTable table;
  table.For(1).RhoLock();
  table.For(1).UnRhoLock();
  table.For(300).XiLock();
  table.For(300).UnXiLock();
  table.For(700).AlphaLock();
  table.For(700).UnAlphaLock();
  const util::RaxLockStats s = table.AggregateStats();
  EXPECT_EQ(s.rho_acquired, 1u);
  EXPECT_EQ(s.xi_acquired, 1u);
  EXPECT_EQ(s.alpha_acquired, 1u);
}

}  // namespace
}  // namespace exhash::core
