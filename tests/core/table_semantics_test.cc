// Implementation-generic semantic tests: the same suite runs against every
// KeyValueIndex in the repository (single-threaded here; concurrency is
// exercised in tests/concurrency/).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "exhash/exhash.h"
#include "test_paths.h"
#include "util/random.h"

namespace exhash {
namespace {

using core::KeyValueIndex;
using core::TableOptions;

TableOptions SmallOptions() {
  TableOptions options;
  options.page_size = 112;  // capacity 4
  options.initial_depth = 1;
  options.max_depth = 18;
  options.poison_on_dealloc = true;  // catch any use-after-dealloc
  return options;
}

struct TableFactory {
  std::string name;
  std::function<std::unique_ptr<KeyValueIndex>()> make;
};

class TableSemanticsTest : public ::testing::TestWithParam<TableFactory> {
 protected:
  std::unique_ptr<KeyValueIndex> table_ = GetParam().make();
};

TEST_P(TableSemanticsTest, EmptyTableFindsNothing) {
  EXPECT_FALSE(table_->Find(0, nullptr));
  EXPECT_FALSE(table_->Find(12345, nullptr));
  EXPECT_FALSE(table_->Remove(0));
  EXPECT_EQ(table_->Size(), 0u);
}

TEST_P(TableSemanticsTest, SingleRecordLifecycle) {
  uint64_t v = 0;
  EXPECT_TRUE(table_->Insert(7, 70));
  EXPECT_EQ(table_->Size(), 1u);
  EXPECT_TRUE(table_->Find(7, &v));
  EXPECT_EQ(v, 70u);
  EXPECT_TRUE(table_->Remove(7));
  EXPECT_EQ(table_->Size(), 0u);
  EXPECT_FALSE(table_->Find(7, nullptr));
}

TEST_P(TableSemanticsTest, DuplicateInsertRejected) {
  EXPECT_TRUE(table_->Insert(5, 50));
  EXPECT_FALSE(table_->Insert(5, 99));
  uint64_t v = 0;
  EXPECT_TRUE(table_->Find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_EQ(table_->Size(), 1u);
}

TEST_P(TableSemanticsTest, RemoveAbsentKeyFails) {
  table_->Insert(1, 1);
  EXPECT_FALSE(table_->Remove(2));
  EXPECT_EQ(table_->Size(), 1u);
}

TEST_P(TableSemanticsTest, ZeroAndMaxKeys) {
  const uint64_t max = ~uint64_t{0};
  EXPECT_TRUE(table_->Insert(0, 1));
  EXPECT_TRUE(table_->Insert(max, 2));
  uint64_t v = 0;
  EXPECT_TRUE(table_->Find(0, &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(table_->Find(max, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(table_->Remove(0));
  EXPECT_TRUE(table_->Remove(max));
}

TEST_P(TableSemanticsTest, GrowThenFindEverything) {
  constexpr uint64_t kN = 3000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(table_->Insert(k, k ^ 0xabcd)) << k;
  }
  EXPECT_EQ(table_->Size(), kN);
  std::string error;
  ASSERT_TRUE(table_->Validate(&error)) << error;
  for (uint64_t k = 0; k < kN; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(table_->Find(k, &v)) << k;
    ASSERT_EQ(v, k ^ 0xabcd);
  }
  EXPECT_FALSE(table_->Find(kN + 1, nullptr));
}

TEST_P(TableSemanticsTest, GrowThenShrinkToEmpty) {
  constexpr uint64_t kN = 2000;
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(table_->Insert(k, k));
  for (uint64_t k = 0; k < kN; ++k) ASSERT_TRUE(table_->Remove(k)) << k;
  EXPECT_EQ(table_->Size(), 0u);
  std::string error;
  ASSERT_TRUE(table_->Validate(&error)) << error;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_FALSE(table_->Find(k, nullptr)) << k;
  }
}

TEST_P(TableSemanticsTest, InterleavedOracleComparison) {
  std::unordered_map<uint64_t, uint64_t> oracle;
  util::Rng rng(99);
  constexpr uint64_t kKeySpace = 400;
  for (int i = 0; i < 15000; ++i) {
    const uint64_t key = rng.Uniform(kKeySpace);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {
        const bool inserted = table_->Insert(key, key + i);
        const bool expected = oracle.find(key) == oracle.end();
        ASSERT_EQ(inserted, expected) << "op " << i;
        if (inserted) oracle[key] = key + i;
        break;
      }
      case 2: {
        ASSERT_EQ(table_->Remove(key), oracle.erase(key) > 0) << "op " << i;
        break;
      }
      case 3: {
        uint64_t v = 0;
        const bool found = table_->Find(key, &v);
        const auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end()) << "op " << i;
        if (found) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(table_->Size(), oracle.size());
  std::string error;
  ASSERT_TRUE(table_->Validate(&error)) << error;
}

TEST_P(TableSemanticsTest, ForEachRecordVisitsEverythingOnce) {
  constexpr uint64_t kN = 500;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(table_->Insert(k, k * 11));
  }
  std::unordered_map<uint64_t, uint64_t> seen;
  const uint64_t visited = table_->ForEachRecord(
      [&seen](uint64_t key, uint64_t value) { seen[key] = value; });
  EXPECT_EQ(visited, kN);
  ASSERT_EQ(seen.size(), kN);
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(seen.at(k), k * 11);
  }
}

TEST_P(TableSemanticsTest, ForEachRecordOnEmptyTable) {
  uint64_t visited = table_->ForEachRecord([](uint64_t, uint64_t) {});
  EXPECT_EQ(visited, 0u);
  // And after grow-then-empty, still zero.
  for (uint64_t k = 0; k < 200; ++k) table_->Insert(k, k);
  for (uint64_t k = 0; k < 200; ++k) table_->Remove(k);
  visited = table_->ForEachRecord([](uint64_t, uint64_t) {});
  EXPECT_EQ(visited, 0u);
}

TEST_P(TableSemanticsTest, ChurnSameKeys) {
  // Insert/delete the same small key set repeatedly: exercises the
  // split/merge hysteresis repeatedly on the same buckets.
  for (int round = 0; round < 30; ++round) {
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(table_->Insert(k, round)) << "round " << round << " k " << k;
    }
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(table_->Remove(k)) << "round " << round << " k " << k;
    }
  }
  EXPECT_EQ(table_->Size(), 0u);
  std::string error;
  ASSERT_TRUE(table_->Validate(&error)) << error;
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, TableSemanticsTest,
    ::testing::Values(
        TableFactory{"sequential",
                     [] {
                       return std::make_unique<core::SequentialExtendibleHash>(
                           SmallOptions());
                     }},
        TableFactory{"ellis_v1",
                     [] {
                       return std::make_unique<core::EllisHashTableV1>(
                           SmallOptions());
                     }},
        TableFactory{"ellis_v2",
                     [] {
                       return std::make_unique<core::EllisHashTableV2>(
                           SmallOptions());
                     }},
        TableFactory{"ellis_v1_nomerge",
                     [] {
                       auto o = SmallOptions();
                       o.enable_merging = false;
                       return std::make_unique<core::EllisHashTableV1>(o);
                     }},
        TableFactory{"ellis_v2_nomerge",
                     [] {
                       auto o = SmallOptions();
                       o.enable_merging = false;
                       return std::make_unique<core::EllisHashTableV2>(o);
                     }},
        TableFactory{"global_lock",
                     [] {
                       return std::make_unique<baseline::GlobalLockHash>(
                           SmallOptions());
                     }},
        TableFactory{"ellis_v2_on_disk",
                     [] {
                       auto o = SmallOptions();
                       o.backing_file =
                           testpaths::UniqueBackingFile("semantics");
                       return std::make_unique<core::EllisHashTableV2>(o);
                     }},
        TableFactory{"blink",
                     [] {
                       return std::make_unique<baseline::BlinkTree>(
                           baseline::BlinkTree::Options{.fanout = 8});
                     }}),
    [](const ::testing::TestParamInfo<TableFactory>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace exhash
