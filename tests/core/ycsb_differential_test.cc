// Differential testing of the YCSB op families: every implementation —
// both concurrent protocols (plus a mitigation-enabled V2) and the
// sequential baseline — replays one identical seeded YCSB stream op by op
// against a std::map reference.  This extends differential_test.cc's
// find/insert/remove coverage to the two new operations: Update (atomic
// in-place RMW) and ScanFrom (bounded chain scan with its
// min(limit, Size()) quiescent law), and proves the hot-bucket mitigation
// changes performance shape only, never semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

#include "core/ellis_v1.h"
#include "core/ellis_v2.h"
#include "core/sequential_hash.h"
#include "workload/runner.h"
#include "workload/ycsb.h"

namespace exhash::core {
namespace {

TableOptions SmallOptions(bool mitigated = false) {
  TableOptions options;
  options.page_size = 112;  // capacity 4: restructures constantly
  options.initial_depth = 1;
  options.max_depth = 16;
  if (mitigated) {
    // Exact sampling and a tight window so bias splits actually fire
    // within a few thousand ops.
    options.hot_bucket_mitigation = true;
    options.hot_sample_every = 1;
    options.hot_window = 64;
    options.hot_share = 0.20;
  }
  return options;
}

class YcsbDifferentialTest
    : public ::testing::TestWithParam<workload::YcsbWorkload> {
 protected:
  YcsbDifferentialTest()
      : v1_(SmallOptions()),
        v2_(SmallOptions()),
        v2_mitigated_(SmallOptions(/*mitigated=*/true)),
        seq_(SmallOptions()) {}

  KeyValueIndex* tables_[4] = {&v1_, &v2_, &v2_mitigated_, &seq_};

  workload::YcsbOptions Options() const {
    workload::YcsbOptions o;
    o.workload = GetParam();
    o.record_count = 600;
    o.d_preload = 200;
    o.seed = 42;
    return o;
  }

  // Mirrors workload::YcsbPreload against the model too.
  void Preload(const workload::YcsbOptions& o) {
    if (o.workload == workload::YcsbWorkload::kD) {
      for (uint64_t i = 0; i < o.d_preload; ++i) {
        Insert(workload::YcsbGenerator::LatestKey(0, i),
               workload::PayloadValue(
                   workload::YcsbGenerator::LatestKey(0, i),
                   o.value_size_min));
      }
      return;
    }
    for (uint64_t i = 0; i < o.record_count; ++i) {
      Insert(i, workload::PayloadValue(i, o.value_size_min));
    }
    if (o.workload == workload::YcsbWorkload::kStorm) {
      for (uint32_t i = 0; i < o.storm_hot_keys; ++i) {
        const uint64_t key = workload::YcsbGenerator::StormHotKey(o, i);
        Insert(key, workload::PayloadValue(key, o.value_size_min));
      }
    }
  }

  void Insert(uint64_t key, uint64_t value) {
    const bool expect = model_.emplace(key, value).second;
    for (KeyValueIndex* t : tables_) {
      ASSERT_EQ(t->Insert(key, value), expect)
          << t->Name() << " Insert(" << key << ") diverged at op " << ops_;
    }
    ++ops_;
  }

  void Read(uint64_t key) {
    const auto it = model_.find(key);
    const bool expect = it != model_.end();
    for (KeyValueIndex* t : tables_) {
      uint64_t out = 0;
      ASSERT_EQ(t->Find(key, &out), expect)
          << t->Name() << " Find(" << key << ") diverged at op " << ops_;
      if (expect) {
        ASSERT_EQ(out, it->second)
            << t->Name() << " Find(" << key << ") wrong value at op " << ops_;
      }
    }
    ++ops_;
  }

  // The runner's upsert: in-place overwrite when present, insert when not.
  void Upsert(uint64_t key, uint64_t value) {
    const auto it = model_.find(key);
    const bool present = it != model_.end();
    for (KeyValueIndex* t : tables_) {
      const bool updated =
          t->Update(key, [value](uint64_t) { return value; });
      ASSERT_EQ(updated, present)
          << t->Name() << " Update(" << key << ") diverged at op " << ops_;
      if (!updated) {
        ASSERT_TRUE(t->Insert(key, value)) << t->Name();
      }
    }
    if (present) {
      it->second = value;
    } else {
      model_.emplace(key, value);
    }
    ++ops_;
  }

  // The runner's RMW: old + delta when present, insert delta when not.
  void Rmw(uint64_t key, uint64_t delta) {
    const auto it = model_.find(key);
    const bool present = it != model_.end();
    for (KeyValueIndex* t : tables_) {
      const bool updated =
          t->Update(key, [delta](uint64_t old) { return old + delta; });
      ASSERT_EQ(updated, present)
          << t->Name() << " Rmw(" << key << ") diverged at op " << ops_;
      if (!updated) {
        ASSERT_TRUE(t->Insert(key, delta)) << t->Name();
      }
    }
    if (present) {
      it->second += delta;
    } else {
      model_.emplace(key, delta);
    }
    ++ops_;
  }

  // Quiescent scan law: exactly min(limit, Size()) records visited, each
  // a live (key, value) pair of the model, no key twice.
  void Scan(uint64_t key, uint64_t limit) {
    const uint64_t expect = std::min<uint64_t>(limit, model_.size());
    for (KeyValueIndex* t : tables_) {
      std::set<uint64_t> seen;
      uint64_t bad = 0;
      const uint64_t visited =
          t->ScanFrom(key, limit, [&](uint64_t k, uint64_t v) {
            const auto it = model_.find(k);
            if (it == model_.end() || it->second != v ||
                !seen.insert(k).second) {
              ++bad;
            }
          });
      ASSERT_EQ(visited, expect)
          << t->Name() << " ScanFrom(" << key << ", " << limit
          << ") visited wrong count at op " << ops_;
      ASSERT_EQ(seen.size(), visited) << t->Name() << " at op " << ops_;
      ASSERT_EQ(bad, 0u)
          << t->Name() << " scan surfaced records not in the model at op "
          << ops_;
    }
    ++ops_;
  }

  void Remove(uint64_t key) {
    const bool expect = model_.erase(key) != 0;
    for (KeyValueIndex* t : tables_) {
      ASSERT_EQ(t->Remove(key), expect)
          << t->Name() << " Remove(" << key << ") diverged at op " << ops_;
    }
    ++ops_;
  }

  void CheckState() {
    std::string error;
    for (KeyValueIndex* t : tables_) {
      ASSERT_EQ(t->Size(), model_.size()) << t->Name() << " at op " << ops_;
      ASSERT_TRUE(t->Validate(&error))
          << t->Name() << " at op " << ops_ << ": " << error;
    }
    // Bias splits count in `splits` too, so the bucket-accounting law is
    // mitigation-invariant.
    TableBase* concurrent[3] = {&v1_, &v2_, &v2_mitigated_};
    for (TableBase* t : concurrent) {
      const TableStats s = t->Stats();
      ASSERT_EQ(t->LiveBuckets(), 2 + s.splits - s.merges)
          << t->Name() << " at op " << ops_;
    }
  }

  EllisHashTableV1 v1_;
  EllisHashTableV2 v2_;
  EllisHashTableV2 v2_mitigated_;
  SequentialExtendibleHash seq_;
  std::map<uint64_t, uint64_t> model_;
  uint64_t ops_ = 0;
};

TEST_P(YcsbDifferentialTest, StreamAgreesWithModelEverywhere) {
  const workload::YcsbOptions o = Options();
  Preload(o);
  CheckState();
  workload::YcsbGenerator gen(o, 0);
  for (int i = 0; i < 4000; ++i) {
    const workload::YcsbOp op = gen.Next();
    switch (op.type) {
      case workload::YcsbOp::Type::kRead:
        Read(op.key);
        break;
      case workload::YcsbOp::Type::kUpdate:
        Upsert(op.key, workload::PayloadValue(op.key, op.value_size));
        break;
      case workload::YcsbOp::Type::kInsert:
        Insert(op.key, workload::PayloadValue(op.key, op.value_size));
        break;
      case workload::YcsbOp::Type::kRmw:
        Rmw(op.key, workload::PayloadValue(op.key, op.value_size));
        break;
      case workload::YcsbOp::Type::kScan:
        Scan(op.key, op.scan_len);
        break;
      case workload::YcsbOp::Type::kRemove:
        Remove(op.key);
        break;
    }
    if (i % 256 == 0) CheckState();
  }
  CheckState();
  // The update-heavy and RMW mixes must actually have exercised the
  // in-place write path in the concurrent tables.
  if (GetParam() == workload::YcsbWorkload::kA ||
      GetParam() == workload::YcsbWorkload::kF) {
    EXPECT_GT(v1_.Stats().updates, 0u);
    EXPECT_GT(v2_.Stats().updates, 0u);
  }
  if (GetParam() == workload::YcsbWorkload::kScan) {
    EXPECT_GT(v2_.Stats().scans, 0u);
  }
  // Under the storm, the mitigated table must have taken early splits —
  // and still agreed with the model on every single op above.
  if (GetParam() == workload::YcsbWorkload::kStorm) {
    EXPECT_GT(v2_mitigated_.Stats().bias_splits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, YcsbDifferentialTest,
    ::testing::Values(workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                      workload::YcsbWorkload::kD, workload::YcsbWorkload::kF,
                      workload::YcsbWorkload::kScan,
                      workload::YcsbWorkload::kStorm),
    [](const ::testing::TestParamInfo<workload::YcsbWorkload>& info) {
      std::string name = ToString(info.param);
      name[0] = char(std::toupper(name[0]));  // "scan" -> "Scan"
      return name;
    });

}  // namespace
}  // namespace exhash::core
