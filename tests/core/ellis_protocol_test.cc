// Protocol-specific behaviour of the two locking solutions: which lock
// modes they take on the directory, the partner-relock dance, the merge-free
// restart (the Figure 9 livelock fix), and directed split/merge scenarios
// steered with the identity hasher.

#include <gtest/gtest.h>

#include "core/ellis_v1.h"
#include "core/ellis_v2.h"
#include "util/epoch.h"
#include "util/pseudokey.h"

namespace exhash::core {
namespace {

util::IdentityHasher* identity() {
  static util::IdentityHasher h;
  return &h;
}

TableOptions DirectedOptions(int initial_depth) {
  TableOptions options;
  options.page_size = 112;  // capacity 4
  options.initial_depth = initial_depth;
  options.max_depth = 16;
  options.hasher = identity();
  options.poison_on_dealloc = true;
  return options;
}

// --- Directory lock usage under the snapshot directory (DESIGN.md §4d):
// search phases never touch the directory lock in either solution; the
// lock appears only when a restructure actually changes the directory. ---

TEST(EllisProtocolTest, V1InsertTouchesDirectoryAlphaOnlyOnSplit) {
  EllisHashTableV1 table(DirectedOptions(1));
  // Four even keys fill bucket "0" without splitting: no directory lock
  // in any mode — the snapshot load replaced the search-phase locking.
  for (uint64_t k : {0b0000u, 0b0010u, 0b0100u, 0b0110u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  const auto s0 = table.DirectoryLockStats();
  EXPECT_EQ(s0.rho_acquired, 0u);
  EXPECT_EQ(s0.alpha_acquired, 0u);
  // The fifth forces a split: exactly one directory alpha, no conversion.
  ASSERT_TRUE(table.Insert(0b1000, 8));
  const auto s = table.DirectoryLockStats();
  EXPECT_EQ(s.alpha_acquired, 1u);
  EXPECT_EQ(s.upgrades, 0u);
}

TEST(EllisProtocolTest, V2InsertTouchesDirectoryAlphaOnlyOnSplit) {
  EllisHashTableV2 table(DirectedOptions(1));
  // Four even keys fill bucket "0" without splitting.
  for (uint64_t k : {0b0000u, 0b0010u, 0b0100u, 0b0110u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  const auto s0 = table.DirectoryLockStats();
  EXPECT_EQ(s0.rho_acquired, 0u);
  EXPECT_EQ(s0.alpha_acquired, 0u);
  // The fifth forces a split: one direct alpha (the old rho->alpha
  // conversion vanished along with the search-phase rho lock).
  ASSERT_TRUE(table.Insert(0b1000, 8));
  const auto s = table.DirectoryLockStats();
  EXPECT_EQ(s.alpha_acquired, 1u);
  EXPECT_EQ(s.upgrades, 0u);
}

TEST(EllisProtocolTest, V1DeleteXiLocksTheDirectoryOnlyOnMerge) {
  // Plain removals never touch the directory lock...
  EllisHashTableV1 table(DirectedOptions(1));
  table.Insert(0, 0);
  table.Insert(1, 1);
  table.Remove(0);
  table.Remove(1);
  EXPECT_EQ(table.DirectoryLockStats().xi_acquired, 0u);
  EXPECT_EQ(table.DirectoryLockStats().rho_acquired, 0u);

  // ...but a merge keeps V1's exclusive directory critical section.
  EllisHashTableV1 merging(DirectedOptions(2));
  ASSERT_TRUE(merging.Insert(0b00, 1));
  ASSERT_TRUE(merging.Insert(0b10, 2));
  ASSERT_TRUE(merging.Remove(0b00));
  EXPECT_EQ(merging.Stats().merges, 1u);
  EXPECT_EQ(merging.DirectoryLockStats().xi_acquired, 1u);
}

TEST(EllisProtocolTest, V2PlainDeleteNeverWriteLocksTheDirectory) {
  EllisHashTableV2 table(DirectedOptions(1));
  table.Insert(0, 0);
  table.Insert(2, 2);
  table.Remove(0);  // localdepth == 1: no merge, plain removal
  table.Remove(2);
  const auto s = table.DirectoryLockStats();
  EXPECT_EQ(s.alpha_acquired, 0u);
  EXPECT_EQ(s.xi_acquired, 0u);  // xi only in the GC phase after merges
}

// --- Directed merges ---

TEST(EllisProtocolTest, MergeWhenKeyInFirstOfPair) {
  // Depth 2, one record in "00" and one in "10"; deleting the "00" record
  // takes the z-in-first path: the partner is the chain successor.
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<TableBase> table;
    if (variant == 0) {
      table = std::make_unique<EllisHashTableV1>(DirectedOptions(2));
    } else {
      table = std::make_unique<EllisHashTableV2>(DirectedOptions(2));
    }
    ASSERT_TRUE(table->Insert(0b00, 1));
    ASSERT_TRUE(table->Insert(0b10, 2));
    ASSERT_TRUE(table->Remove(0b00));
    const auto s = table->Stats();
    EXPECT_EQ(s.merges, 1u) << "variant " << variant;
    EXPECT_EQ(s.partner_relocks, 0u) << "variant " << variant;
    uint64_t v = 0;
    EXPECT_TRUE(table->Find(0b10, &v));
    EXPECT_EQ(v, 2u);
    std::string error;
    EXPECT_TRUE(table->Validate(&error)) << error;
  }
}

TEST(EllisProtocolTest, MergeWhenKeyInSecondOfPairRequiresRelock) {
  // Deleting the lone record of "10" merges with "00", which precedes it in
  // the chain: both solutions must release and re-lock in chain order.
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<TableBase> table;
    if (variant == 0) {
      table = std::make_unique<EllisHashTableV1>(DirectedOptions(2));
    } else {
      table = std::make_unique<EllisHashTableV2>(DirectedOptions(2));
    }
    ASSERT_TRUE(table->Insert(0b00, 1));
    ASSERT_TRUE(table->Insert(0b10, 2));
    ASSERT_TRUE(table->Remove(0b10));
    const auto s = table->Stats();
    EXPECT_EQ(s.merges, 1u) << "variant " << variant;
    EXPECT_EQ(s.partner_relocks, 1u) << "variant " << variant;
    EXPECT_TRUE(table->Find(0b00, nullptr));
    std::string error;
    EXPECT_TRUE(table->Validate(&error)) << error;
  }
}

TEST(EllisProtocolTest, V2StablePartnerMismatchRestartsMergeFree) {
  // Regression test for the Figure 9 livelock: bucket "00" splits deeper
  // (localdepth 3) while "10" stays at 2.  Deleting the lone "10" record
  // takes the z-in-second path; the directory-located "0"-side bucket
  // ("000") is not chain-linked to "10", a *stable* condition.  The delete
  // must restart exactly once, merge-free, and plain-remove.
  EllisHashTableV2 table(DirectedOptions(2));
  // Five keys in pattern 000 (mod 8): bucket "00" splits twice (the first
  // split puts all records in one half), reaching localdepth 4 and doubling
  // the directory to depth 4.
  for (uint64_t k : {0b00000u, 0b01000u, 0b10000u, 0b11000u, 0b100000u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  EXPECT_EQ(table.Depth(), 4);
  ASSERT_TRUE(table.Insert(0b10, 2));  // the lone "10" record
  ASSERT_TRUE(table.Remove(0b10));

  const auto s = table.Stats();
  EXPECT_EQ(s.delete_restarts, 1u);
  EXPECT_EQ(s.merges, 0u);
  EXPECT_FALSE(table.Find(0b10, nullptr));
  std::string error;
  EXPECT_TRUE(table.Validate(&error)) << error;
}

TEST(EllisProtocolTest, V1StablePartnerMismatchRestartsMergeFree) {
  // Same structure under V1.  Without the whole-delete directory lock V1
  // inherits the second solution's partner dance — and with it the Figure 9
  // livelock fix: the stable mismatch restarts exactly once, merge-free.
  EllisHashTableV1 table(DirectedOptions(2));
  for (uint64_t k : {0b00000u, 0b01000u, 0b10000u, 0b11000u, 0b100000u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  ASSERT_TRUE(table.Insert(0b10, 2));
  ASSERT_TRUE(table.Remove(0b10));
  const auto s = table.Stats();
  EXPECT_EQ(s.delete_restarts, 1u);
  EXPECT_EQ(s.merges, 0u);
  EXPECT_FALSE(table.Find(0b10, nullptr));
  std::string error;
  EXPECT_TRUE(table.Validate(&error)) << error;
}

TEST(EllisProtocolTest, V2MergeReclaimsTheTombstonePage) {
  EllisHashTableV2 table(DirectedOptions(2));
  ASSERT_TRUE(table.Insert(0b00, 1));
  ASSERT_TRUE(table.Insert(0b10, 2));
  const auto before = table.IoStats();
  ASSERT_TRUE(table.Remove(0b00));  // merge + GC phase
  // The GC phase retires the tombstone page to the epoch domain rather
  // than deallocating inline; with no operation in flight, draining the
  // domain must give the page back.
  util::EpochDomain::Global().Drain();
  const auto after = table.IoStats();
  EXPECT_EQ(after.deallocs, before.deallocs + 1);
  EXPECT_EQ(after.live_pages + 1, before.live_pages);
  std::string error;
  EXPECT_TRUE(table.Validate(&error)) << error;
}

TEST(EllisProtocolTest, V1MergeReclaimsTheTombstonePage) {
  // V1 shares the tombstone-and-retire scheme: with no directory lock on
  // the read path, even V1 cannot free a merged-away page inline.
  EllisHashTableV1 table(DirectedOptions(2));
  ASSERT_TRUE(table.Insert(0b00, 1));
  ASSERT_TRUE(table.Insert(0b10, 2));
  const auto before = table.IoStats();
  ASSERT_TRUE(table.Remove(0b00));
  util::EpochDomain::Global().Drain();
  const auto after = table.IoStats();
  EXPECT_EQ(after.deallocs, before.deallocs + 1);
  EXPECT_EQ(after.live_pages + 1, before.live_pages);
  std::string error;
  EXPECT_TRUE(table.Validate(&error)) << error;
}

TEST(EllisProtocolTest, MergeSkippedWhenBucketNotEmptyEnough) {
  // "The simplest interpretation for 'too empty' is that the only record
  // contained in the bucket is the one to be deleted" (section 2.2).
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<TableBase> table;
    if (variant == 0) {
      table = std::make_unique<EllisHashTableV1>(DirectedOptions(2));
    } else {
      table = std::make_unique<EllisHashTableV2>(DirectedOptions(2));
    }
    ASSERT_TRUE(table->Insert(0b000, 1));
    ASSERT_TRUE(table->Insert(0b100, 2));  // two records in "00"
    ASSERT_TRUE(table->Remove(0b000));
    EXPECT_EQ(table->Stats().merges, 0u);
    EXPECT_TRUE(table->Find(0b100, nullptr));
  }
}

TEST(EllisProtocolTest, MergeNeverReducesLocaldepthBelowOne) {
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<TableBase> table;
    if (variant == 0) {
      table = std::make_unique<EllisHashTableV1>(DirectedOptions(1));
    } else {
      table = std::make_unique<EllisHashTableV2>(DirectedOptions(1));
    }
    ASSERT_TRUE(table->Insert(0, 0));
    ASSERT_TRUE(table->Insert(1, 1));
    ASSERT_TRUE(table->Remove(0));  // partner "1" nonempty & localdepth 1
    ASSERT_TRUE(table->Remove(1));
    EXPECT_EQ(table->Stats().merges, 0u);
    EXPECT_EQ(table->Depth(), 1);
    std::string error;
    EXPECT_TRUE(table->Validate(&error)) << error;
  }
}

TEST(EllisProtocolTest, DeleteOfAbsentKeyFromSingletonBucketIsSafe) {
  // The Figure 7 fix: deleting an absent key from a one-record bucket must
  // not merge away (and thereby lose) the innocent record.
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<TableBase> table;
    if (variant == 0) {
      table = std::make_unique<EllisHashTableV1>(DirectedOptions(2));
    } else {
      table = std::make_unique<EllisHashTableV2>(DirectedOptions(2));
    }
    ASSERT_TRUE(table->Insert(0b100, 7));  // lone record in "00"
    // 0b1000 also lands in "00" but is absent.
    EXPECT_FALSE(table->Remove(0b1000));
    uint64_t v = 0;
    EXPECT_TRUE(table->Find(0b100, &v));
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(table->Stats().merges, 0u);
  }
}

TEST(EllisProtocolTest, SplitPublishesNewHalfBeforeOldPage) {
  // Indirect check of the write ordering (section 2.3): after any split the
  // structure is valid — and the directed scenario pins the halves' layout.
  EllisHashTableV2 table(DirectedOptions(1));
  for (uint64_t k : {0b000u, 0b010u, 0b100u, 0b110u, 0b001u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  // Bucket "0" was full; inserting an odd key does not split.  Now overflow
  // "0" for real:
  ASSERT_TRUE(table.Insert(0b1000, 8));
  EXPECT_EQ(table.Stats().splits, 1u);
  EXPECT_EQ(table.Depth(), 2);
  for (uint64_t k : {0b000u, 0b010u, 0b100u, 0b110u, 0b001u, 0b1000u}) {
    EXPECT_TRUE(table.Find(k, nullptr)) << k;
  }
  std::string error;
  EXPECT_TRUE(table.Validate(&error)) << error;
}

}  // namespace
}  // namespace exhash::core
