// Walking the paper's worked structures.  Figure 1 shows a depth-2 file
// with four buckets; Figure 2 shows how updates drive splits, a directory
// doubling, merges, and a halving; Figures 3-4 add the next links and show
// a split re-linking them.  With the identity hasher (pseudokey == key) we
// rebuild those transitions literally and check every intermediate state.

#include <gtest/gtest.h>

#include "core/ellis_v2.h"
#include "core/sequential_hash.h"
#include "util/pseudokey.h"

namespace exhash::core {
namespace {

util::IdentityHasher* identity() {
  static util::IdentityHasher h;
  return &h;
}

TableOptions PaperOptions() {
  TableOptions options;
  options.page_size = 112;  // 4 records per bucket — the figures' "y = z"
  options.initial_depth = 2;
  options.max_depth = 12;
  options.hasher = identity();
  options.poison_on_dealloc = true;
  return options;
}

// Figure 1: depth 2, entries 00/01/10/11, find by the low bits.
TEST(PaperScenariosTest, Figure1FindByLowBits) {
  SequentialExtendibleHash table(PaperOptions());
  // Keys chosen so their two low bits spread over all four buckets
  // (the paper's example pseudokey "...101" indexes entry 01).
  ASSERT_TRUE(table.Insert(0b1100, 1));  // entry 00
  ASSERT_TRUE(table.Insert(0b0101, 2));  // entry 01
  ASSERT_TRUE(table.Insert(0b0110, 3));  // entry 10
  ASSERT_TRUE(table.Insert(0b1011, 4));  // entry 11
  EXPECT_EQ(table.Depth(), 2);
  uint64_t v = 0;
  EXPECT_TRUE(table.Find(0b0101, &v));  // "imagine it is ...101"
  EXPECT_EQ(v, 2u);
  // All four buckets still at localdepth == depth: no sharing yet.
  EXPECT_EQ(table.Stats().splits, 0u);
}

// Figure 2's first transition: a bucket fills and splits *without*
// doubling when its localdepth is below the directory depth.
TEST(PaperScenariosTest, Figure2SplitWithoutDoubling) {
  // Build a file where bucket "0" has localdepth 1 while depth is 2 —
  // start at depth 1 and double through the "1" side.
  TableOptions options = PaperOptions();
  options.initial_depth = 1;
  SequentialExtendibleHash table(options);
  // Fill "1": 4 odd keys, then a fifth odd key doubles the directory and
  // splits "1" into "01"/"11".
  for (uint64_t k : {0b0001u, 0b0011u, 0b0101u, 0b0111u, 0b1001u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  EXPECT_EQ(table.Depth(), 2);
  EXPECT_EQ(table.Stats().doublings, 1u);
  // Bucket "0" now has localdepth 1: both 00 and 10 entries point at it.
  // Filling it splits WITHOUT another doubling.
  for (uint64_t k : {0b0000u, 0b0010u, 0b0100u, 0b0110u, 0b1000u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  EXPECT_EQ(table.Depth(), 2);  // unchanged
  EXPECT_EQ(table.Stats().doublings, 1u);
  EXPECT_EQ(table.Stats().splits, 2u);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
}

// Figure 2's growth + shrink round trip: inserts double the directory,
// deletes merge the buckets back and halve it.
TEST(PaperScenariosTest, Figure2GrowShrinkRoundTrip) {
  TableOptions options = PaperOptions();
  options.initial_depth = 1;
  EllisHashTableV2 table(options);
  const int depth0 = table.Depth();

  for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(table.Insert(k, k));
  EXPECT_GT(table.Depth(), depth0);
  const auto grown = table.Stats();
  EXPECT_GT(grown.splits, 0u);
  EXPECT_GT(grown.doublings, 0u);

  for (uint64_t k = 0; k < 64; ++k) ASSERT_TRUE(table.Remove(k));
  const auto shrunk = table.Stats();
  EXPECT_GT(shrunk.merges, 0u);
  EXPECT_GT(shrunk.halvings, 0u);
  EXPECT_LT(table.Depth(), 7);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
}

// Figure 3/4: the concurrent structure's next links.  After the second
// bucket splits, the original points at the new bucket and the new bucket
// inherits the old link — visible through DebugString's chain dump.
TEST(PaperScenariosTest, Figure4SplitRelinksTheChain) {
  TableOptions options = PaperOptions();
  options.initial_depth = 1;
  EllisHashTableV2 table(options);

  const std::string before = table.DebugString();
  EXPECT_NE(before.find("depth=1"), std::string::npos);

  // Split the "1" bucket (the "second bucket" of Figure 3).
  for (uint64_t k : {0b0001u, 0b0011u, 0b0101u, 0b0111u, 0b1001u}) {
    ASSERT_TRUE(table.Insert(k, k));
  }
  const std::string after = table.DebugString();
  // The chain now reads 0 -> 01 -> 11: the new bucket ("11") sits right
  // after the one that split ("01"), holding the old link's place.
  const size_t p0 = after.find("[0]");
  const size_t p01 = after.find("[01]");
  const size_t p11 = after.find("[11]");
  ASSERT_NE(p0, std::string::npos) << after;
  ASSERT_NE(p01, std::string::npos) << after;
  ASSERT_NE(p11, std::string::npos) << after;
  EXPECT_LT(p0, p01);
  EXPECT_LT(p01, p11);
  std::string error;
  ASSERT_TRUE(table.Validate(&error)) << error;
}

TEST(PaperScenariosTest, DebugStringShowsCounts) {
  EllisHashTableV2 table(PaperOptions());
  table.Insert(0b00, 1);
  table.Insert(0b100, 2);
  const std::string dump = table.DebugString();
  EXPECT_NE(dump.find("depth=2"), std::string::npos);
  EXPECT_NE(dump.find("count=2"), std::string::npos) << dump;
  EXPECT_NE(dump.find("size=2"), std::string::npos);
}

}  // namespace
}  // namespace exhash::core
