#include "core/directory.h"

#include <gtest/gtest.h>

namespace exhash::core {
namespace {

TEST(DirectoryTest, InitialState) {
  Directory dir(2, 10);
  EXPECT_EQ(dir.depth(), 2);
  EXPECT_EQ(dir.NumEntries(), 4u);
  EXPECT_EQ(dir.max_depth(), 10);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dir.Entry(i), storage::kInvalidPage);
  }
}

TEST(DirectoryTest, SetAndGetEntries) {
  Directory dir(2, 10);
  dir.SetEntry(0, 100);
  dir.SetEntry(3, 103);
  EXPECT_EQ(dir.Entry(0), 100u);
  EXPECT_EQ(dir.Entry(3), 103u);
}

TEST(DirectoryTest, UpdateEntriesHitsAllMatchingIndices) {
  Directory dir(3, 10);
  for (uint64_t i = 0; i < 8; ++i) dir.SetEntry(i, 1);
  // Point every entry whose low 2 bits are 0b01 at page 55.
  dir.UpdateEntries(55, 2, 0b01);
  for (uint64_t i = 0; i < 8; ++i) {
    if ((i & 0b11) == 0b01) {
      EXPECT_EQ(dir.Entry(i), 55u) << i;
    } else {
      EXPECT_EQ(dir.Entry(i), 1u) << i;
    }
  }
}

TEST(DirectoryTest, UpdateEntriesAtFullDepthTouchesOneEntry) {
  Directory dir(3, 10);
  for (uint64_t i = 0; i < 8; ++i) dir.SetEntry(i, 1);
  dir.UpdateEntries(77, 3, 0b110);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dir.Entry(i), i == 0b110 ? 77u : 1u) << i;
  }
}

TEST(DirectoryTest, DoubleCopiesLowerHalf) {
  Directory dir(2, 10);
  for (uint64_t i = 0; i < 4; ++i) dir.SetEntry(i, 10 + i);
  ASSERT_TRUE(dir.Double());
  EXPECT_EQ(dir.depth(), 3);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(dir.Entry(i), 10 + i);
    EXPECT_EQ(dir.Entry(i + 4), 10 + i);  // upper half mirrors lower
  }
}

TEST(DirectoryTest, DoubleFailsAtMaxDepth) {
  Directory dir(2, 2);
  EXPECT_FALSE(dir.Double());
  EXPECT_EQ(dir.depth(), 2);
}

TEST(DirectoryTest, HalveReducesDepth) {
  Directory dir(3, 10);
  for (uint64_t i = 0; i < 8; ++i) dir.SetEntry(i, 9);
  dir.Halve();
  EXPECT_EQ(dir.depth(), 2);
  EXPECT_EQ(dir.NumEntries(), 4u);
}

TEST(DirectoryTest, RecomputeDepthcountCountsDifferingPairs) {
  Directory dir(2, 10);
  // Entries: 0->A 1->B 2->A 3->C.  At depth 2, pairs are (0,2) and (1,3):
  // (A,A) same, (B,C) differ => two full-depth buckets.
  dir.SetEntry(0, 1);
  dir.SetEntry(1, 2);
  dir.SetEntry(2, 1);
  dir.SetEntry(3, 3);
  EXPECT_EQ(dir.RecomputeDepthcount(), 2);
}

TEST(DirectoryTest, RecomputeDepthcountAllShared) {
  Directory dir(2, 10);
  dir.SetEntry(0, 1);
  dir.SetEntry(1, 2);
  dir.SetEntry(2, 1);
  dir.SetEntry(3, 2);
  EXPECT_EQ(dir.RecomputeDepthcount(), 0);
}

TEST(DirectoryTest, RecomputeDepthcountAllDistinct) {
  Directory dir(2, 10);
  for (uint64_t i = 0; i < 4; ++i) dir.SetEntry(i, i);
  EXPECT_EQ(dir.RecomputeDepthcount(), 4);
}

TEST(DirectoryTest, DepthcountAccessors) {
  Directory dir(1, 10);
  dir.set_depthcount(2);
  dir.AddDepthcount(2);
  EXPECT_EQ(dir.depthcount(), 4);
  dir.AddDepthcount(-4);
  EXPECT_EQ(dir.depthcount(), 0);
}

TEST(DirectoryTest, DoubleThenHalveRestoresEntries) {
  Directory dir(2, 10);
  for (uint64_t i = 0; i < 4; ++i) dir.SetEntry(i, 20 + i);
  ASSERT_TRUE(dir.Double());
  dir.Halve();
  EXPECT_EQ(dir.depth(), 2);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(dir.Entry(i), 20 + i);
}

}  // namespace
}  // namespace exhash::core
