// Torn-read detection at the storage layer (DESIGN.md §4e; labels
// storage,verify).
//
// The seqlock contract under test: an optimistic reader racing a writer
// either fails validation (and retries / falls back) or returns a page
// image some single Write produced — never a mix of two writes.  The
// writer is held mid-copy at the kPageCopy TestHooks yield point, which
// freezes the page in a provably half-written state while readers run
// against it; the deliberately broken protocol (both seq bumps after the
// copy) must hand the reader exactly the mixed image the correct protocol
// makes impossible.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/page_store.h"
#include "util/test_hooks.h"

namespace exhash::storage {
namespace {

constexpr size_t kPageSize = 128;

std::vector<std::byte> Pattern(std::byte fill) {
  return std::vector<std::byte>(kPageSize, fill);
}

bool IsUniform(const std::vector<std::byte>& page, std::byte fill) {
  for (std::byte b : page) {
    if (b != fill) return false;
  }
  return true;
}

// Blocks the hooked thread at its first kPageCopy emission until Release();
// other points pass through (the reader side emits kSeqReadBegin /
// kSeqValidate on its own thread).
class PauseAtPageCopy {
 public:
  PauseAtPageCopy() {
    util::TestHooks::Install(&PauseAtPageCopy::Trampoline, this);
  }
  ~PauseAtPageCopy() { util::TestHooks::Clear(); }

  void AwaitPaused() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return paused_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  static void Trampoline(void* ctx, util::HookPoint point, const void*) {
    static_cast<PauseAtPageCopy*>(ctx)->At(point);
  }

  void At(util::HookPoint point) {
    if (point != util::HookPoint::kPageCopy) return;
    std::unique_lock<std::mutex> lk(mu_);
    if (armed_fired_) return;  // only the first copy pauses
    armed_fired_ = true;
    paused_ = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return released_; });
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_fired_ = false;
  bool paused_ = false;
  bool released_ = false;
};

// Correct protocol: with the writer frozen mid-copy the sequence word is
// odd, so every optimistic read in the window is rejected; after release
// the reader sees the complete new image.  No interleaving shows a mix.
TEST(SeqlockTornTest, PausedWriterNeverLeaksAMixedPage) {
  PageStore store({.page_size = kPageSize});
  const PageId p = store.Alloc();
  const auto before = Pattern(std::byte{0xAA});
  const auto after = Pattern(std::byte{0xBB});
  store.Write(p, before.data());

  PauseAtPageCopy pause;
  std::thread writer([&] { store.Write(p, after.data()); });
  pause.AwaitPaused();

  // The page is genuinely half-written right now; the optimistic reader
  // must refuse to validate it (the word is odd for the whole window).
  std::vector<std::byte> out(kPageSize);
  int validated = 0;
  for (int i = 0; i < 64; ++i) {
    if (store.ReadOptimistic(p, out.data())) {
      ++validated;
      EXPECT_TRUE(IsUniform(out, std::byte{0xAA}) ||
                  IsUniform(out, std::byte{0xBB}))
          << "validated read returned a mixed page";
    }
  }
  EXPECT_EQ(validated, 0) << "reads validated against an in-flight write";
  const auto stats = store.stats();
  EXPECT_GE(stats.optimistic_torn, 64u);

  pause.Release();
  writer.join();
  ASSERT_TRUE(store.ReadOptimistic(p, out.data()));
  EXPECT_TRUE(IsUniform(out, std::byte{0xBB}));
}

// Broken protocol (TableOptions::test_seq_bump_after_write): the word
// stays even across the copy, so the reader validates the frozen
// half-written page — the storage-level witness the schedule sweeps catch
// at table level.
TEST(SeqlockTornTest, BrokenSeqOrderValidatesTheMixedPage) {
  PageStore::Options options;
  options.page_size = kPageSize;
  options.test_seq_bump_after_write = true;
  PageStore store(options);
  const PageId p = store.Alloc();
  const auto before = Pattern(std::byte{0xAA});
  const auto after = Pattern(std::byte{0xBB});
  store.Write(p, before.data());

  PauseAtPageCopy pause;
  std::thread writer([&] { store.Write(p, after.data()); });
  pause.AwaitPaused();

  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(store.ReadOptimistic(p, out.data()))
      << "broken variant should validate against the even word";
  // The frozen page is exactly half new, half old — and the "validated"
  // copy shows it.
  EXPECT_EQ(std::memcmp(out.data(), after.data(), kPageSize / 2), 0);
  EXPECT_EQ(std::memcmp(out.data() + kPageSize / 2,
                        before.data() + kPageSize / 2, kPageSize / 2),
            0);

  pause.Release();
  writer.join();
}

// The pre-image half of the contract: before the writer reaches its odd
// bump, readers validate and get the old image byte-for-byte.
TEST(SeqlockTornTest, ReaderBeforeTheWriteGetsThePreImage) {
  PageStore store({.page_size = kPageSize});
  const PageId p = store.Alloc();
  const auto before = Pattern(std::byte{0x5C});
  store.Write(p, before.data());
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(store.ReadOptimistic(p, out.data()));
  EXPECT_EQ(std::memcmp(out.data(), before.data(), kPageSize), 0);
}

TEST(SeqlockTornTest, SeqAdvancesByTwoPerWriteAndSurvivesReuse) {
  PageStore::Options options;
  options.page_size = kPageSize;
  options.poison_on_dealloc = true;
  PageStore store(options);
  const PageId p = store.Alloc();
  const auto img = Pattern(std::byte{0x01});
  EXPECT_EQ(store.PageSeq(p), 0u);
  store.Write(p, img.data());
  EXPECT_EQ(store.PageSeq(p), 2u);
  store.Write(p, img.data());
  EXPECT_EQ(store.PageSeq(p), 4u);
  // Poisoning mutates the page: it is a write for the protocol.
  store.Dealloc(p);
  EXPECT_EQ(store.PageSeq(p), 6u);
  // Reuse keeps the word monotone — the no-ABA guarantee an epoch-pinned
  // reader's validation depends on.
  const PageId q = store.Alloc();
  ASSERT_EQ(q, p);
  EXPECT_EQ(store.PageSeq(q), 6u);
  store.Write(q, img.data());
  EXPECT_EQ(store.PageSeq(q), 8u);
}

// The seq a successful ReadOptimistic reports must be the one its image
// validated against — never a later writer's.  (Regression: the seek path
// once paired a post-read PageSeq sample with the image; a write landing
// between validation and that sample let the lock-then-compare elision
// accept a stale bucket, corrupting chain pointers.)
TEST(SeqlockTornTest, ReportedSeqBelongsToTheImageNotALaterWriter) {
  PageStore store({.page_size = kPageSize});
  const PageId p = store.Alloc();
  const auto a = Pattern(std::byte{0xAA});
  const auto b = Pattern(std::byte{0xBB});
  store.Write(p, a.data());

  std::vector<std::byte> out(kPageSize);
  uint64_t seq = ~0ull;
  ASSERT_TRUE(store.ReadOptimistic(p, out.data(), &seq));
  EXPECT_EQ(seq, store.PageSeq(p));  // quiescent: the two agree

  // A write after the read must invalidate the pairing: the image is now
  // stale and PageSeq moved on, so `PageSeq == seq` correctly fails.
  store.Write(p, b.data());
  EXPECT_NE(store.PageSeq(p), seq);
  uint64_t seq2 = ~0ull;
  ASSERT_TRUE(store.ReadOptimistic(p, out.data(), &seq2));
  EXPECT_EQ(seq2, seq + 2);
  EXPECT_TRUE(IsUniform(out, std::byte{0xBB}));
}

// Same contract for the file-backed degradation: the latched read samples
// the seq under the writer's own latch, so it cannot observe a later
// writer's value, and dealloc poisoning bumps it like any other mutation.
TEST(SeqlockTornTest, FileBackedReadReportsTheLatchedSeq) {
  PageStore::Options options;
  options.page_size = kPageSize;
  options.poison_on_dealloc = true;
  options.backing_file = ::testing::TempDir() + "/seqlock_torn_file.pages";
  PageStore store(options);
  const PageId p = store.Alloc();
  const auto a = Pattern(std::byte{0x11});
  store.Write(p, a.data());

  std::vector<std::byte> out(kPageSize);
  uint64_t seq = ~0ull;
  ASSERT_TRUE(store.ReadOptimistic(p, out.data(), &seq));
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(std::memcmp(out.data(), a.data(), kPageSize), 0);

  store.Write(p, a.data());
  EXPECT_EQ(store.PageSeq(p), 4u);
  store.Dealloc(p);  // poison is a mutation: bumps even with file backing
  EXPECT_EQ(store.PageSeq(p), 6u);
}

TEST(SeqlockTornTest, OutOfRangePageIdReadsAsTorn) {
  PageStore store({.page_size = kPageSize});
  (void)store.Alloc();
  std::vector<std::byte> out(kPageSize);
  // A torn image can hand the lock-free chase an arbitrary word as a page
  // id; the store must answer "torn", not crash.
  EXPECT_FALSE(store.ReadOptimistic(kInvalidPage, out.data()));
  EXPECT_FALSE(store.ReadOptimistic(123456789u, out.data()));
  EXPECT_GE(store.stats().optimistic_torn, 2u);
}

// Concurrent smoke: one writer alternating two images, readers validating
// copies — every validated copy is one of the two images, never a blend.
TEST(SeqlockTornTest, ConcurrentReadersOnlySeeWholeImages) {
  PageStore store({.page_size = kPageSize});
  const PageId p = store.Alloc();
  const auto a = Pattern(std::byte{0xAA});
  const auto b = Pattern(std::byte{0xBB});
  store.Write(p, a.data());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) {
      store.Write(p, (i & 1) ? b.data() : a.data());
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::vector<std::byte> out(kPageSize);
      while (!stop.load(std::memory_order_acquire)) {
        if (!store.ReadOptimistic(p, out.data())) continue;
        if (!IsUniform(out, std::byte{0xAA}) &&
            !IsUniform(out, std::byte{0xBB})) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace exhash::storage
