// Delta-record redo corners (DESIGN.md §9): the delta codec itself, and
// the recovery interactions that make byte deltas sound — a delta whose
// base slot is torn (healed from the last full image first), a delta
// chain whose retained prefix replays over a *newer* fuzzy-checkpoint
// slot capture, a page deallocated and reused inside one log (the reuse
// must re-base with a full image), and the deliberately broken
// delta-before-base discipline recovery must refuse to serve.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace exhash::storage {
namespace {

constexpr size_t kPage = 64;

std::vector<std::byte> FilledPage(uint8_t fill) {
  std::vector<std::byte> page(kPage);
  for (size_t i = 0; i < kPage; ++i) {
    page[i] = std::byte(uint8_t(fill + i));
  }
  return page;
}

PageStore::Options WalStoreOptions() {
  PageStore::Options o;
  o.page_size = kPage;
  o.wal = true;
  return o;
}

// --- The codec alone ---

TEST(DeltaCodecTest, RoundtripMergesNearbyExtents) {
  const auto base = FilledPage(1);
  auto next = base;
  // Two changed bytes 3 apart (gap < 8) fold into one extent; a third
  // change far away opens a second extent.
  next[4] ^= std::byte{0x10};
  next[7] ^= std::byte{0x20};
  next[40] ^= std::byte{0x40};
  std::vector<std::byte> payload;
  const size_t n = Wal::EncodeDelta(base.data(), next.data(), kPage, &payload);
  // Extent framing is 4 bytes: [4..7] costs 4+4, [40] costs 4+1.
  EXPECT_EQ(n, 13u);
  auto page = base;
  ASSERT_TRUE(Wal::ApplyDelta(payload.data(), n, page.data(), kPage));
  EXPECT_EQ(std::memcmp(page.data(), next.data(), kPage), 0);
}

TEST(DeltaCodecTest, IdenticalPagesEncodeToNothing) {
  const auto base = FilledPage(3);
  std::vector<std::byte> payload;
  EXPECT_EQ(Wal::EncodeDelta(base.data(), base.data(), kPage, &payload), 0u);
}

TEST(DeltaCodecTest, MalformedPayloadsAreRejectedNotApplied) {
  auto page = FilledPage(1);
  const auto pristine = page;
  const auto bytes = [](const auto& a) {
    return reinterpret_cast<const std::byte*>(a);
  };
  // Truncated: header promises 4 bytes, only 2 follow.
  const uint8_t truncated[] = {4, 0, 4, 0, 0xAA, 0xBB};
  EXPECT_FALSE(Wal::ApplyDelta(bytes(truncated), sizeof(truncated),
                               page.data(), kPage));
  // Extent past the page end: offset 60, length 8 on a 64-byte page.
  const uint8_t past_end[] = {60, 0, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(Wal::ApplyDelta(bytes(past_end), sizeof(past_end), page.data(),
                               kPage));
  // Zero-length extent: never emitted by the encoder, so refused.
  const uint8_t zero_len[] = {4, 0, 0, 0};
  EXPECT_FALSE(Wal::ApplyDelta(bytes(zero_len), sizeof(zero_len), page.data(),
                               kPage));
  // A rejected delta must not have half-applied.
  EXPECT_EQ(std::memcmp(page.data(), pristine.data(), kPage), 0);
}

// --- Recovery corners ---

// A delta's base slot is torn at rest, but the retained log holds a
// committed full image of the page: recovery heals from the image first,
// then applies the delta over it.
TEST(DeltaRedoTest, TornBaseSlotHealedByImageThenDeltaApplies) {
  PageStore store(WalStoreOptions());
  const PageId pa = store.Alloc();
  const PageId pb = store.Alloc();
  store.Write(pa, FilledPage(1).data());
  store.Write(pb, FilledPage(2).data());
  ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);  // gen 1; log recycled
  // Post-checkpoint: a full rewrite (every byte differs -> image record)
  // then a small touch-up (-> delta record).
  const auto big = FilledPage(9);
  store.Write(pb, big.data());
  auto touched = big;
  touched[3] ^= std::byte{0xFF};
  touched[4] ^= std::byte{0xFF};
  store.Write(pb, touched.data());
  const PageStoreStats ws = store.stats();
  EXPECT_EQ(ws.wal_deltas, 1u);
  store.CrashNow(/*seed=*/7);
  std::shared_ptr<CrashImage> image = store.TakeCrashImage();

  // Tear pb's only valid slot copy (gen-1 parity: physical slot 2p + 1;
  // 2p is an all-zero hole).  The delta's checkpoint base is now gone.
  const size_t slot_size = kPage + kSlotTrailerSize;
  image->slots[(2 * size_t(pb) + 1) * slot_size + 5] ^= std::byte{0xFF};

  PageStore::Options o = WalStoreOptions();
  o.recover_image = std::move(image);
  PageStore recovered(o);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.repaired_slots, 1u);
  EXPECT_EQ(report.replayed_images, 1u);
  EXPECT_EQ(report.replayed_deltas, 1u);
  std::vector<std::byte> out(kPage);
  recovered.Read(pb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), touched.data(), kPage), 0);
  recovered.Read(pa, out.data());
  EXPECT_EQ(std::memcmp(out.data(), FilledPage(1).data(), kPage), 0);
}

// A fuzzy checkpoint taken while a transaction's recycle window is open
// retains the whole chain — full image and deltas older than the slot
// capture included.  Redo replays them *over* the newer capture: the
// page regresses and re-advances byte-wise, converging on the chain's
// final state (last-writer-wins soundness, DESIGN.md §9).
TEST(DeltaRedoTest, RetainedChainReplaysOverNewerSlotCapture) {
  PageStore store(WalStoreOptions());
  const PageId pa = store.Alloc();
  const PageId pb = store.Alloc();
  const auto a0 = FilledPage(1);
  store.Write(pa, a0.data());  // image
  auto a1 = a0;
  a1[10] ^= std::byte{0x01};
  store.Write(pa, a1.data());  // delta
  // Open window: pb's transaction is staged but not yet committed, so
  // the checkpoint's safe recycle LSN sits below the whole log and
  // nothing is dropped.
  const uint64_t txn = store.BeginTxn();
  const auto x = FilledPage(5);
  store.Write(pb, x.data(), txn);
  ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);  // slot(pa) captures a1
  ASSERT_EQ(store.CommitTxn(txn), IoStatus::kOk);
  auto a2 = a1;
  a2[20] ^= std::byte{0x02};
  store.Write(pa, a2.data());  // delta, after the checkpoint
  store.CrashNow(/*seed=*/8);

  PageStore::Options o = WalStoreOptions();
  o.recover_image = store.TakeCrashImage();
  PageStore recovered(o);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_GE(report.slots_loaded, 1u);
  // The pre-checkpoint image and delta were retained and replayed.
  EXPECT_GE(report.replayed_images, 1u);
  EXPECT_EQ(report.replayed_deltas, 2u);
  std::vector<std::byte> out(kPage);
  recovered.Read(pa, out.data());
  EXPECT_EQ(std::memcmp(out.data(), a2.data(), kPage), 0);
  recovered.Read(pb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), x.data(), kPage), 0);
}

// Dealloc clears the page's delta-base flag: when the id is reused in
// the same log, the first write must log a full image again (the old
// image in the log describes the previous tenant), and redo of the whole
// image/delta/image chain converges on the new tenant's bytes.
TEST(DeltaRedoTest, DeallocThenReuseRebasesWithFullImage) {
  PageStore store(WalStoreOptions());
  const PageId pa = store.Alloc();
  const auto a0 = FilledPage(1);
  store.Write(pa, a0.data());  // image
  auto a1 = a0;
  a1[7] ^= std::byte{0x04};
  store.Write(pa, a1.data());  // delta
  store.Dealloc(pa);
  const PageId pb = store.Alloc();
  ASSERT_EQ(pb, pa);  // free-list reuse of the same id
  // One byte off a1: delta-eligible against the stale base, which is
  // exactly why the cleared flag must force an image here.
  auto b = a1;
  b[0] ^= std::byte{0x08};
  store.Write(pb, b.data());
  const PageStoreStats ws = store.stats();
  EXPECT_EQ(ws.wal_images, 2u);
  EXPECT_EQ(ws.wal_deltas, 1u);
  store.CrashNow(/*seed=*/9);

  PageStore::Options o = WalStoreOptions();
  o.recover_image = store.TakeCrashImage();
  PageStore recovered(o);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.replayed_images, 2u);
  EXPECT_EQ(report.replayed_deltas, 1u);
  std::vector<std::byte> out(kPage);
  recovered.Read(pb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), b.data(), kPage), 0);
}

// The teeth check: with the delta-before-base discipline deliberately
// broken (TEST ONLY flag), a committed delta reaches the log for a page
// with no slot copy and no prior image.  Recovery has nothing sound to
// apply it over and must refuse (kCorrupt), never serve a guessed page.
TEST(DeltaRedoTest, DeltaWithNoBaseIsARecoveryRefusal) {
  PageStore::Options o = WalStoreOptions();
  o.test_delta_before_base = true;
  PageStore store(o);
  const PageId pa = store.Alloc();
  // A sparse page (mostly zeros) diffs small against the zero base the
  // broken mode invents, so the very first write lands as a delta.
  std::vector<std::byte> sparse(kPage, std::byte{0});
  for (size_t i = 0; i < 8; ++i) sparse[i] = std::byte(uint8_t(i + 1));
  store.Write(pa, sparse.data());
  const PageStoreStats ws = store.stats();
  ASSERT_EQ(ws.wal_deltas, 1u) << "broken mode failed to force a delta";
  ASSERT_EQ(ws.wal_images, 0u);
  store.CrashNow(/*seed=*/10);

  PageStore::Options r = WalStoreOptions();
  r.recover_image = store.TakeCrashImage();
  PageStore recovered(r);
  const RecoveryReport report = recovered.Recover();
  EXPECT_EQ(report.status, IoStatus::kCorrupt);
  EXPECT_NE(report.error.find("no base"), std::string::npos) << report.error;
  ASSERT_EQ(report.corrupt_pages.size(), 1u);
  EXPECT_EQ(report.corrupt_pages[0], pa);
}

}  // namespace
}  // namespace exhash::storage
