// Durability-layer unit tests (DESIGN.md §9): WAL record codec and
// recovery-side scan, simulated-crash freeze semantics, the typed I/O
// fault seam, and checkpoint/recover roundtrips through PageStore.

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "storage/checksum.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace exhash::storage {
namespace {

constexpr size_t kPage = 64;

std::vector<std::byte> FilledPage(uint8_t fill) {
  std::vector<std::byte> page(kPage);
  for (size_t i = 0; i < kPage; ++i) {
    page[i] = std::byte(uint8_t(fill + i));
  }
  return page;
}

TEST(Crc32cTest, KnownVectorAndIncrementality) {
  // RFC 3720 test vector: 32 zero bytes -> 0x8A9136AA.
  unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  // Seeding with a prefix's CRC equals one pass over the whole buffer.
  const char data[] = "extendible hashing";
  const uint32_t whole = Crc32c(data, sizeof(data));
  const uint32_t split =
      Crc32c(data + 7, sizeof(data) - 7, Crc32c(data, 7));
  EXPECT_EQ(whole, split);
}

TEST(WalTest, CommittedImagesScanInAppendOrder) {
  MemMedia media;
  Wal wal(&media, Wal::Options{});

  const auto a = FilledPage(1);
  const auto b = FilledPage(2);
  const uint64_t t1 = wal.BeginTxn();
  wal.LogPageImage(t1, 3, a.data(), kPage);
  wal.LogPageImage(t1, 4, b.data(), kPage);
  ASSERT_EQ(wal.Commit(t1, /*flush=*/true), IoStatus::kOk);

  std::vector<std::byte> stream;
  ASSERT_EQ(media.ReadWal(&stream), IoStatus::kOk);
  const Wal::ScanResult scan = Wal::Scan(stream.data(), stream.size());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.committed_txns, 1u);
  EXPECT_EQ(scan.uncommitted_txns, 0u);
  ASSERT_EQ(scan.committed_records.size(), 2u);
  EXPECT_EQ(scan.committed_records[0].page, 3u);
  EXPECT_EQ(scan.committed_records[1].page, 4u);
  EXPECT_EQ(scan.committed_records[0].len, kPage);
  EXPECT_EQ(scan.valid_bytes, stream.size());
  EXPECT_EQ(std::memcmp(stream.data() + scan.committed_records[0].offset,
                        a.data(), kPage),
            0);
}

TEST(WalTest, UncommittedTxnIsScannedButNotReplayed) {
  MemMedia media;
  Wal wal(&media, Wal::Options{});
  const auto a = FilledPage(7);
  const uint64_t t1 = wal.BeginTxn();
  wal.LogPageImage(t1, 0, a.data(), kPage);
  ASSERT_EQ(wal.Flush(), IoStatus::kOk);  // image durable, commit never

  std::vector<std::byte> stream;
  ASSERT_EQ(media.ReadWal(&stream), IoStatus::kOk);
  const Wal::ScanResult scan = Wal::Scan(stream.data(), stream.size());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.committed_txns, 0u);
  EXPECT_EQ(scan.uncommitted_txns, 1u);
  EXPECT_TRUE(scan.committed_records.empty());
}

TEST(WalTest, TornTailEndsTheScanWithoutLosingThePrefix) {
  MemMedia media;
  Wal wal(&media, Wal::Options{});
  const auto a = FilledPage(3);
  const uint64_t t1 = wal.BeginTxn();
  wal.LogPageImage(t1, 1, a.data(), kPage);
  ASSERT_EQ(wal.Commit(t1, true), IoStatus::kOk);
  const uint64_t t2 = wal.BeginTxn();
  wal.LogPageImage(t2, 2, a.data(), kPage);
  ASSERT_EQ(wal.Commit(t2, true), IoStatus::kOk);

  std::vector<std::byte> stream;
  ASSERT_EQ(media.ReadWal(&stream), IoStatus::kOk);
  // Cut the stream mid-way through txn 2's records: the scan keeps txn 1,
  // reports the tear, and never surfaces a half-record.
  const Wal::ScanResult full = Wal::Scan(stream.data(), stream.size());
  ASSERT_EQ(full.committed_txns, 2u);
  const size_t cut = stream.size() - kPage / 2;
  const Wal::ScanResult torn = Wal::Scan(stream.data(), cut);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.committed_txns, 1u);
  ASSERT_EQ(torn.committed_records.size(), 1u);
  EXPECT_EQ(torn.committed_records[0].page, 1u);
  EXPECT_LT(torn.valid_bytes, cut);
}

TEST(WalTest, CorruptRecordCrcEndsTheScan) {
  MemMedia media;
  Wal wal(&media, Wal::Options{});
  const auto a = FilledPage(9);
  const uint64_t t1 = wal.BeginTxn();
  wal.LogPageImage(t1, 5, a.data(), kPage);
  ASSERT_EQ(wal.Commit(t1, true), IoStatus::kOk);

  std::vector<std::byte> stream;
  ASSERT_EQ(media.ReadWal(&stream), IoStatus::kOk);
  // Flip one payload byte: the record CRC fails, the scan treats the
  // stream as ending there.
  stream[Wal::kHeaderSize + 3] ^= std::byte{0xFF};
  const Wal::ScanResult scan = Wal::Scan(stream.data(), stream.size());
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.committed_txns, 0u);
  EXPECT_TRUE(scan.committed_records.empty());
}

TEST(WalTest, FreezeDropsWritesButReportsSuccess) {
  MemMedia media;
  Wal wal(&media, Wal::Options{});
  const auto a = FilledPage(1);
  const uint64_t t1 = wal.BeginTxn();
  wal.LogPageImage(t1, 0, a.data(), kPage);
  ASSERT_EQ(wal.Commit(t1, true), IoStatus::kOk);

  std::vector<std::byte> before;
  ASSERT_EQ(media.ReadWal(&before), IoStatus::kOk);

  media.Freeze(/*seed=*/42);
  const uint64_t t2 = wal.BeginTxn();
  wal.LogPageImage(t2, 1, a.data(), kPage);
  // The dying process must not learn of the cut through its own I/O.
  EXPECT_EQ(wal.Commit(t2, true), IoStatus::kOk);  // the one torn write
  const size_t slot_size = kPage + kSlotTrailerSize;
  EXPECT_EQ(media.WriteSlot(0, a.data(), slot_size), IoStatus::kOk);
  EXPECT_EQ(media.TruncateWal(), IoStatus::kOk);

  // Durable bytes: the pre-freeze prefix, plus a seeded prefix of the one
  // in-flight write (possibly all of it, possibly none); everything after
  // — the slot write, the truncate — is dropped.
  EXPECT_EQ(media.NumSlots(slot_size), 0u);
  std::vector<std::byte> after;
  ASSERT_EQ(media.ReadWal(&after), IoStatus::kOk);
  ASSERT_GE(after.size(), before.size());
  EXPECT_EQ(std::memcmp(after.data(), before.data(), before.size()), 0);
  const Wal::ScanResult scan = Wal::Scan(after.data(), after.size());
  EXPECT_GE(scan.committed_txns, 1u);  // txn 1 always survives the cut
  EXPECT_LE(scan.committed_txns, 2u);
}

TEST(WalTest, TestFaultSurfacesTypedStatus) {
  MemMedia media;
  media.SetTestFault(/*after_bytes=*/0, IoStatus::kNoSpace);
  Wal wal(&media, Wal::Options{});
  const auto a = FilledPage(1);
  const uint64_t t1 = wal.BeginTxn();
  wal.LogPageImage(t1, 0, a.data(), kPage);
  EXPECT_EQ(wal.Commit(t1, true), IoStatus::kNoSpace);
  EXPECT_STREQ(IoStatusName(IoStatus::kNoSpace), "no-space");
}

// Regression (segmented log): a 64-byte image record is 92 bytes framed
// and a commit is 28, so two single-image transactions fill 240 bytes of
// a 256-byte segment and the third forces zero-padding to the boundary.
// A scan cut inside that padding — or exactly ON the boundary — is a
// CLEAN end (padding is not a record), not a torn tail; the bug was
// classifying the all-zero tail as torn, which recovery then reported
// for a perfectly healthy log.
TEST(WalTest, ScanCutOnSegmentBoundaryIsCleanNotTorn) {
  MemMedia media;
  Wal::Options opts;
  opts.segment_bytes = 256;
  Wal wal(&media, opts);
  const auto a = FilledPage(1);
  for (uint32_t t = 0; t < 3; ++t) {
    const uint64_t txn = wal.BeginTxn();
    wal.LogPageImage(txn, t, a.data(), kPage);
    ASSERT_EQ(wal.Commit(txn, /*flush=*/true), IoStatus::kOk);
  }
  std::vector<std::byte> stream;
  ASSERT_EQ(media.ReadWal(&stream), IoStatus::kOk);
  ASSERT_GT(stream.size(), 256u);  // the third txn crossed into segment 1
  for (const size_t cut : {size_t(250), size_t(256)}) {
    const Wal::ScanResult scan = Wal::Scan(stream.data(), cut);
    EXPECT_FALSE(scan.torn_tail) << "cut at " << cut;
    EXPECT_EQ(scan.committed_txns, 2u) << "cut at " << cut;
    EXPECT_EQ(scan.committed_records.size(), 2u) << "cut at " << cut;
  }
}

// Checkpoint recycling drops whole segments from the front; the retained
// stream then *starts* at a segment boundary.  Its scan must stay clean
// and keep every record at or above the safe recycle LSN.
TEST(WalTest, RecyclingDropsWholeSegmentsAndRetainedScanIsClean) {
  MemMedia media;
  Wal::Options opts;
  opts.segment_bytes = 256;
  Wal wal(&media, opts);
  const auto a = FilledPage(1);
  for (uint32_t t = 0; t < 3; ++t) {
    const uint64_t txn = wal.BeginTxn();
    wal.LogPageImage(txn, t, a.data(), kPage);
    ASSERT_EQ(wal.Commit(txn, /*flush=*/true), IoStatus::kOk);
    wal.OnPublished(txn);
  }
  // A fourth transaction holds its recycle window open in segment 1
  // (first record at LSN 376), so recycling can drop exactly segment 0.
  const uint64_t t4 = wal.BeginTxn();
  wal.LogPageImage(t4, 9, a.data(), kPage);
  ASSERT_EQ(wal.Commit(t4, /*flush=*/true), IoStatus::kOk);
  const uint64_t safe = wal.SafeRecycleLsn();
  EXPECT_EQ(safe, 376u);
  ASSERT_EQ(wal.RecycleTo(safe), IoStatus::kOk);
  EXPECT_EQ(wal.stats().recycled_segments, 1u);

  std::vector<std::byte> stream;
  ASSERT_EQ(media.ReadWal(&stream), IoStatus::kOk);
  EXPECT_EQ(stream.size(), 240u);  // 496 appended - 256 dropped
  const Wal::ScanResult scan = Wal::Scan(stream.data(), stream.size());
  EXPECT_FALSE(scan.torn_tail);
  // Transaction 3's records straddled the recycle point's segment (its
  // image opens segment 1), so it and txn 4 survive; 1 and 2 are gone.
  EXPECT_EQ(scan.committed_txns, 2u);
  ASSERT_EQ(scan.committed_records.size(), 2u);
  EXPECT_EQ(scan.committed_records[0].page, 2u);
  EXPECT_EQ(scan.committed_records[1].page, 9u);
}

// --- PageStore-level durability ---

PageStore::Options WalStoreOptions() {
  PageStore::Options o;
  o.page_size = kPage;
  o.wal = true;
  return o;
}

TEST(PageStoreDurabilityTest, CheckpointRecoverRoundtrip) {
  PageStore store(WalStoreOptions());
  const auto a = FilledPage(1);
  const auto b = FilledPage(2);
  const auto c = FilledPage(3);
  const PageId pa = store.Alloc();
  const PageId pb = store.Alloc();
  store.Write(pa, a.data());
  store.Write(pb, b.data());
  ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);
  // Post-checkpoint delta lives only in the log.
  store.Write(pb, c.data());

  store.CrashNow(/*seed=*/7);
  std::shared_ptr<CrashImage> image = store.TakeCrashImage();

  PageStore::Options ro = WalStoreOptions();
  ro.recover_image = image;
  PageStore recovered(ro);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.slots_loaded, 2u);
  EXPECT_EQ(report.replayed_images, 1u);
  EXPECT_TRUE(report.corrupt_pages.empty());
  EXPECT_EQ(recovered.extent(), 2u);

  std::vector<std::byte> out(kPage);
  recovered.Read(pa, out.data());
  EXPECT_EQ(std::memcmp(out.data(), a.data(), kPage), 0);
  recovered.Read(pb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), c.data(), kPage), 0);

  // Allocation resumes past the recovered extent; ids never alias.
  EXPECT_EQ(recovered.Alloc(), PageId{2});
}

TEST(PageStoreDurabilityTest, MultiPageTxnIsAtomicAndUncommittedIgnored) {
  PageStore store(WalStoreOptions());
  const auto a = FilledPage(1);
  const auto b = FilledPage(2);
  const auto n = FilledPage(9);
  const PageId pa = store.Alloc();
  const PageId pb = store.Alloc();
  {
    const uint64_t txn = store.BeginTxn();
    store.Write(pa, a.data(), txn);
    store.Write(pb, b.data(), txn);
    ASSERT_EQ(store.CommitTxn(txn, /*flush=*/true), IoStatus::kOk);
  }
  {
    // Logged, never committed: recovery must not replay either image.
    const uint64_t txn = store.BeginTxn();
    store.Write(pa, n.data(), txn);
    store.Write(pb, n.data(), txn);
    ASSERT_EQ(store.FlushWal(), IoStatus::kOk);
  }
  store.CrashNow(3);
  PageStore::Options ro = WalStoreOptions();
  ro.recover_image = store.TakeCrashImage();
  PageStore recovered(ro);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.committed_txns, 1u);
  EXPECT_EQ(report.uncommitted_txns, 1u);
  std::vector<std::byte> out(kPage);
  recovered.Read(pa, out.data());
  EXPECT_EQ(std::memcmp(out.data(), a.data(), kPage), 0);
  recovered.Read(pb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), b.data(), kPage), 0);
}

TEST(PageStoreDurabilityTest, IoFaultSurfacesThroughCommitAndSticks) {
  PageStore store(WalStoreOptions());
  const auto a = FilledPage(1);
  const PageId pa = store.Alloc();
  EXPECT_EQ(store.last_io_error(), IoStatus::kOk);

  store.durable_media()->SetTestFault(/*after_bytes=*/0, IoStatus::kNoSpace);
  const uint64_t txn = store.BeginTxn();
  store.Write(pa, a.data(), txn);
  EXPECT_EQ(store.CommitTxn(txn, true), IoStatus::kNoSpace);
  EXPECT_EQ(store.last_io_error(), IoStatus::kNoSpace);
  EXPECT_EQ(store.Checkpoint(), IoStatus::kNoSpace);
}

TEST(PageStoreDurabilityTest, ShortWriteFaultSurfacesTyped) {
  PageStore store(WalStoreOptions());
  const auto a = FilledPage(1);
  const PageId pa = store.Alloc();
  store.Write(pa, a.data());  // flushed: some durable bytes exist
  store.durable_media()->SetTestFault(/*after_bytes=*/1,
                                      IoStatus::kShortWrite);
  const uint64_t txn = store.BeginTxn();
  store.Write(pa, a.data(), txn);
  EXPECT_EQ(store.CommitTxn(txn, true), IoStatus::kShortWrite);
  EXPECT_EQ(store.last_io_error(), IoStatus::kShortWrite);
}

TEST(PageStoreDurabilityTest, RecoverEmptyMediaReportsUnformatted) {
  PageStore::Options ro = WalStoreOptions();
  ro.recover_image = std::make_shared<CrashImage>();
  ro.recover_image->page_size = kPage;
  PageStore store(ro);
  const RecoveryReport report = store.Recover();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, IoStatus::kUnformatted);
}

TEST(PageStoreDurabilityTest, WalStatsFlowThroughStoreStats) {
  PageStore store(WalStoreOptions());
  const auto a = FilledPage(1);
  const PageId pa = store.Alloc();
  store.Write(pa, a.data());
  const PageStoreStats stats = store.stats();
  EXPECT_EQ(stats.wal_txns, 1u);
  EXPECT_EQ(stats.wal_commits, 1u);
  EXPECT_GE(stats.wal_appends, 2u);  // image + commit
  EXPECT_GE(stats.wal_flushes, 1u);
  EXPECT_GT(stats.wal_flushed_bytes, kPage);
}

}  // namespace
}  // namespace exhash::storage
