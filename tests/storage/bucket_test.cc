#include "storage/bucket.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/random.h"

namespace exhash::storage {
namespace {

TEST(BucketTest, CapacityFromPageSize) {
  // 48-byte header + 16-byte records.
  EXPECT_EQ(Bucket::CapacityFor(112), 4);
  EXPECT_EQ(Bucket::CapacityFor(256), 13);
  EXPECT_EQ(Bucket::CapacityFor(4096), 253);
}

TEST(BucketTest, AddSearchRemove) {
  Bucket b(4);
  EXPECT_TRUE(b.empty());
  b.Add(10, 100);
  b.Add(20, 200);
  EXPECT_EQ(b.count(), 2);
  uint64_t v = 0;
  EXPECT_TRUE(b.Search(10, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(b.Search(20, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_FALSE(b.Search(30));
  EXPECT_TRUE(b.Remove(10));
  EXPECT_FALSE(b.Remove(10));
  EXPECT_FALSE(b.Search(10));
  EXPECT_EQ(b.count(), 1);
}

TEST(BucketTest, FullAtCapacity) {
  Bucket b(3);
  b.Add(1, 1);
  b.Add(2, 2);
  EXPECT_FALSE(b.full());
  b.Add(3, 3);
  EXPECT_TRUE(b.full());
}

TEST(BucketTest, SearchWithoutValuePointer) {
  Bucket b(2);
  b.Add(7, 77);
  EXPECT_TRUE(b.Search(7));
  EXPECT_TRUE(b.Search(7, nullptr));
}

TEST(BucketTest, SerializeRoundtripPreservesEverything) {
  constexpr size_t kPageSize = 256;
  Bucket b(Bucket::CapacityFor(kPageSize));
  b.localdepth = 5;
  b.commonbits = 0b10110;
  b.next = 42;
  b.prev = 17;
  b.next_mgr = 3;
  b.prev_mgr = 2;
  b.version = 991;
  b.deleted = true;
  b.Add(111, 1110);
  b.Add(222, 2220);

  std::vector<std::byte> page(kPageSize);
  b.SerializeTo(page.data(), kPageSize);

  Bucket out(Bucket::CapacityFor(kPageSize));
  ASSERT_TRUE(Bucket::DeserializeFrom(page.data(), kPageSize, &out));
  EXPECT_EQ(out.localdepth, 5);
  EXPECT_EQ(out.commonbits, 0b10110u);
  EXPECT_EQ(out.next, 42u);
  EXPECT_EQ(out.prev, 17u);
  EXPECT_EQ(out.next_mgr, 3u);
  EXPECT_EQ(out.prev_mgr, 2u);
  EXPECT_EQ(out.version, 991u);
  EXPECT_TRUE(out.deleted);
  ASSERT_EQ(out.count(), 2);
  uint64_t v = 0;
  EXPECT_TRUE(out.Search(111, &v));
  EXPECT_EQ(v, 1110u);
  EXPECT_TRUE(out.Search(222, &v));
  EXPECT_EQ(v, 2220u);
}

TEST(BucketTest, DeserializeRejectsGarbage) {
  std::vector<std::byte> page(256);
  std::memset(page.data(), 0xDB, page.size());  // the poison pattern
  Bucket out(Bucket::CapacityFor(256));
  EXPECT_FALSE(Bucket::DeserializeFrom(page.data(), 256, &out));
}

TEST(BucketTest, DeserializeRejectsOversizedCount) {
  constexpr size_t kPageSize = 112;  // capacity 4
  Bucket b(4);
  b.Add(1, 1);
  std::vector<std::byte> page(kPageSize);
  b.SerializeTo(page.data(), kPageSize);
  // Corrupt the count field (offset 4) to an impossible value.
  const int32_t bogus = 1000;
  std::memcpy(page.data() + 4, &bogus, sizeof(bogus));
  Bucket out(4);
  EXPECT_FALSE(Bucket::DeserializeFrom(page.data(), kPageSize, &out));
}

// Property sweep: roundtrip across page sizes and fill levels.
class BucketRoundtripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BucketRoundtripTest, RandomContentsRoundtrip) {
  const size_t page_size = GetParam();
  const int capacity = Bucket::CapacityFor(page_size);
  util::Rng rng(page_size);
  for (int fill = 0; fill <= capacity; fill += std::max(1, capacity / 7)) {
    Bucket b(capacity);
    b.localdepth = int(rng.Uniform(20));
    b.commonbits = rng.Next();
    b.next = uint32_t(rng.Next());
    b.version = rng.Next();
    for (int i = 0; i < fill; ++i) b.Add(rng.Next(), rng.Next());

    std::vector<std::byte> page(page_size);
    b.SerializeTo(page.data(), page_size);
    Bucket out(capacity);
    ASSERT_TRUE(Bucket::DeserializeFrom(page.data(), page_size, &out));
    EXPECT_EQ(out.count(), b.count());
    for (const Record& r : b.records()) {
      uint64_t v = 0;
      EXPECT_TRUE(out.Search(r.key, &v));
      EXPECT_EQ(v, r.value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BucketRoundtripTest,
                         ::testing::Values(112, 128, 256, 512, 1024, 4096));

TEST(BucketTest, RemoveKeepsOtherRecords) {
  Bucket b(8);
  for (uint64_t k = 0; k < 8; ++k) b.Add(k, k * 10);
  EXPECT_TRUE(b.Remove(3));
  for (uint64_t k = 0; k < 8; ++k) {
    if (k == 3) {
      EXPECT_FALSE(b.Search(k));
    } else {
      uint64_t v = 0;
      EXPECT_TRUE(b.Search(k, &v));
      EXPECT_EQ(v, k * 10);
    }
  }
}

}  // namespace
}  // namespace exhash::storage
