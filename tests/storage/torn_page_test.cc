// Torn/damaged-page witness (DESIGN.md §9, companion to
// seqlock_torn_test): flip bytes in a committed page at rest and assert
// the recovery path *reports* the corruption — checksum mismatch, the
// damaged page named — and never serves the damaged bytes as data.  Also
// witnesses the two benign classifications recovery must distinguish from
// corruption: a torn slot healed by a committed WAL image, and an
// all-zero never-written hole.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace exhash::storage {
namespace {

constexpr size_t kPage = 64;
constexpr size_t kSlotSize = kPage + kSlotTrailerSize;

// Each logical page owns two physical slot copies, alternating by
// checkpoint generation parity.  These stores checkpoint exactly once
// (gen 1, odd), so page p's valid copy sits at physical slot 2p + 1 and
// physical slot 2p is an all-zero hole.
size_t Gen1SlotOffset(size_t page) { return (2 * page + 1) * kSlotSize; }

std::vector<std::byte> FilledPage(uint8_t fill) {
  std::vector<std::byte> page(kPage);
  for (size_t i = 0; i < kPage; ++i) {
    page[i] = std::byte(uint8_t(fill + i));
  }
  return page;
}

PageStore::Options WalStoreOptions() {
  PageStore::Options o;
  o.page_size = kPage;
  o.wal = true;
  return o;
}

// Checkpointed store's crash image with three distinct pages.
std::shared_ptr<CrashImage> CheckpointedImage() {
  PageStore store(WalStoreOptions());
  for (uint8_t i = 0; i < 3; ++i) {
    const PageId p = store.Alloc();
    store.Write(p, FilledPage(uint8_t(1 + i)).data());
  }
  EXPECT_EQ(store.Checkpoint(), IoStatus::kOk);
  store.CrashNow(/*seed=*/1);
  return store.TakeCrashImage();
}

RecoveryReport RecoverFrom(std::shared_ptr<CrashImage> image) {
  PageStore::Options o = WalStoreOptions();
  o.recover_image = std::move(image);
  PageStore store(o);
  return store.Recover();
}

TEST(TornPageTest, FlippedPayloadByteIsReportedNotServed) {
  std::shared_ptr<CrashImage> image = CheckpointedImage();
  // One bit of page 1's payload flips at rest.
  image->slots[Gen1SlotOffset(1) + 17] ^= std::byte{0x40};
  const RecoveryReport report = RecoverFrom(image);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, IoStatus::kCorrupt);
  ASSERT_EQ(report.corrupt_pages.size(), 1u);
  EXPECT_EQ(report.corrupt_pages[0], PageId{1});
  // The undamaged neighbors were still classified, not abandoned.
  EXPECT_EQ(report.slots_loaded, 2u);
}

TEST(TornPageTest, FlippedTrailerByteIsReported) {
  std::shared_ptr<CrashImage> image = CheckpointedImage();
  // Damage the trailer (gen field) instead of the payload: the CRC
  // covers the generation too, so a flipped gen byte can never silently
  // promote a stale copy.
  image->slots[Gen1SlotOffset(2) + kPage + 8] ^= std::byte{0x01};
  const RecoveryReport report = RecoverFrom(image);
  EXPECT_EQ(report.status, IoStatus::kCorrupt);
  ASSERT_EQ(report.corrupt_pages.size(), 1u);
  EXPECT_EQ(report.corrupt_pages[0], PageId{2});
}

TEST(TornPageTest, TornSlotHealedByCommittedImage) {
  PageStore store(WalStoreOptions());
  const PageId pa = store.Alloc();
  const PageId pb = store.Alloc();
  store.Write(pa, FilledPage(1).data());
  store.Write(pb, FilledPage(2).data());
  ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);
  // A post-checkpoint committed write to pb: its image is in the log.
  const auto fresh = FilledPage(9);
  store.Write(pb, fresh.data());
  store.CrashNow(2);
  std::shared_ptr<CrashImage> image = store.TakeCrashImage();

  // The same page's slot is torn at rest — exactly the state a crash
  // mid-checkpoint leaves.  The committed image makes it benign.
  image->slots[Gen1SlotOffset(size_t(pb)) + 5] ^= std::byte{0xFF};

  PageStore::Options o = WalStoreOptions();
  o.recover_image = image;
  PageStore recovered(o);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.repaired_slots, 1u);
  EXPECT_TRUE(report.corrupt_pages.empty());
  std::vector<std::byte> out(kPage);
  recovered.Read(pb, out.data());
  EXPECT_EQ(std::memcmp(out.data(), fresh.data(), kPage), 0);
}

TEST(TornPageTest, AllZeroSlotIsAnUnwrittenHoleNotCorruption) {
  std::shared_ptr<CrashImage> image = CheckpointedImage();
  std::memset(image->slots.data() + Gen1SlotOffset(1), 0, kSlotSize);
  const RecoveryReport report = RecoverFrom(image);
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.unwritten_slots, 1u);
  EXPECT_EQ(report.slots_loaded, 2u);
}

TEST(TornPageTest, FlippedByteInBackingFileIsReported) {
  const std::string slots_path =
      ::testing::TempDir() + "/torn_page_slots.db";
  const std::string wal_path = slots_path + ".wal";
  const auto a = FilledPage(1);
  const auto b = FilledPage(2);
  {
    PageStore::Options o = WalStoreOptions();
    o.backing_file = slots_path;
    PageStore store(o);
    const PageId pa = store.Alloc();
    const PageId pb = store.Alloc();
    store.Write(pa, a.data());
    store.Write(pb, b.data());
    ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);
  }
  // Flip one byte of page 0's payload in the file on disk (its gen-1
  // copy lives at physical slot 1).
  {
    const long off = long(Gen1SlotOffset(0)) + 11;
    std::FILE* f = std::fopen(slots_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, off, SEEK_SET), 0);
    std::fputc(c ^ 0x80, f);
    std::fclose(f);
  }
  {
    PageStore::Options o = WalStoreOptions();
    o.backing_file = slots_path;
    o.recover = true;
    PageStore store(o);
    const RecoveryReport report = store.Recover();
    EXPECT_EQ(report.status, IoStatus::kCorrupt);
    ASSERT_EQ(report.corrupt_pages.size(), 1u);
    EXPECT_EQ(report.corrupt_pages[0], PageId{0});
  }
  std::remove(slots_path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace exhash::storage
