// Group-commit flusher witnesses (DESIGN.md §9): the ticket accounting
// law (every durable commit takes a ticket and every ticket is acked by
// a batch fsync — never before), ack-implies-durable under the batching
// policies, and flusher-thread death surfacing its typed IoStatus to
// every waiter instead of hanging or silently acking.

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace exhash::storage {
namespace {

constexpr size_t kPage = 64;

std::vector<std::byte> FilledPage(uint8_t fill) {
  std::vector<std::byte> page(kPage);
  for (size_t i = 0; i < kPage; ++i) {
    page[i] = std::byte(uint8_t(fill + i));
  }
  return page;
}

PageStore::Options FlusherOptions(WalFlushPolicy policy) {
  PageStore::Options o;
  o.page_size = kPage;
  o.wal = true;
  o.wal_flush_policy = policy;
  return o;
}

class FlusherTest : public ::testing::TestWithParam<WalFlushPolicy> {};

// The accounting law: with concurrent committers funneling through the
// flusher, commits == tickets == tickets flushed once the store is
// quiet.  An ack without a flushed ticket would mean a committer was
// released before its batch's fsync — the bug class this law excludes.
TEST_P(FlusherTest, TicketAccountingLawUnderConcurrentCommits) {
  PageStore store(FlusherOptions(GetParam()));
  constexpr int kThreads = 4;
  constexpr int kWrites = 48;
  std::vector<PageId> pages;
  for (int t = 0; t < kThreads; ++t) pages.push_back(store.Alloc());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &pages, t] {
      for (int i = 0; i < kWrites; ++i) {
        const auto page = FilledPage(uint8_t(t * 16 + i));
        store.Write(pages[size_t(t)], page.data());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const PageStoreStats s = store.stats();
  EXPECT_EQ(s.wal_commits, uint64_t(kThreads) * kWrites);
  EXPECT_EQ(s.wal_tickets, s.wal_commits);
  EXPECT_EQ(s.wal_tickets_flushed, s.wal_tickets);
  EXPECT_GT(s.wal_flushes, 0u);
  // Batches larger than one committer happened or not depending on the
  // interleaving, but every batch was histogrammed.
  uint64_t batches = 0;
  for (uint64_t b : s.wal_batch_size_hist) batches += b;
  EXPECT_GT(batches, 0u);
}

// Ack implies durable: every write acked before the cut survives it.
// The batching policies may group the fsync, but a committer is not
// released until its batch is on the media.
TEST_P(FlusherTest, AckedWritesSurviveACutRightAfterTheAck) {
  PageStore store(FlusherOptions(GetParam()));
  constexpr int kPages = 6;
  std::vector<PageId> pages;
  std::vector<std::vector<std::byte>> want;
  for (int i = 0; i < kPages; ++i) {
    pages.push_back(store.Alloc());
    want.push_back(FilledPage(uint8_t(20 + i)));
    store.Write(pages.back(), want.back().data());  // acked when it returns
  }
  store.CrashNow(/*seed=*/11);

  PageStore::Options r = FlusherOptions(GetParam());
  r.recover_image = store.TakeCrashImage();
  PageStore recovered(r);
  const RecoveryReport report = recovered.Recover();
  ASSERT_TRUE(report.ok()) << report.error;
  std::vector<std::byte> out(kPage);
  for (int i = 0; i < kPages; ++i) {
    recovered.Read(pages[size_t(i)], out.data());
    EXPECT_EQ(std::memcmp(out.data(), want[size_t(i)].data(), kPage), 0)
        << "acked write to page " << i << " lost";
  }
}

// Flusher death: an I/O fault inside the batch fsync kills the flusher
// thread.  Every waiter of that batch — and every later committer —
// gets the typed status back; none may hang and none may be acked.
TEST_P(FlusherTest, FlusherDeathSurfacesTypedStatusToAllWaiters) {
  PageStore store(FlusherOptions(GetParam()));
  const PageId healthy = store.Alloc();
  store.Write(healthy, FilledPage(1).data());  // one good batch first
  EXPECT_EQ(store.last_io_error(), IoStatus::kOk);
  store.durable_media()->SetTestFault(/*after_bytes=*/0, IoStatus::kIoError);

  constexpr int kWaiters = 4;
  std::vector<PageId> pages;
  for (int t = 0; t < kWaiters; ++t) pages.push_back(store.Alloc());
  IoStatus got[kWaiters];
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&store, &pages, &got, t] {
      const uint64_t txn = store.BeginTxn();
      const auto page = FilledPage(uint8_t(40 + t));
      store.Write(pages[size_t(t)], page.data(), txn);
      got[t] = store.CommitTxn(txn, /*flush=*/true);
    });
  }
  for (std::thread& w : waiters) w.join();
  for (int t = 0; t < kWaiters; ++t) {
    EXPECT_EQ(got[t], IoStatus::kIoError) << "waiter " << t;
  }
  // The failure is sticky: later durable commits and explicit flushes
  // fail immediately with the same typed status.
  const uint64_t txn = store.BeginTxn();
  store.Write(pages[0], FilledPage(7).data(), txn);
  EXPECT_EQ(store.CommitTxn(txn, /*flush=*/true), IoStatus::kIoError);
  EXPECT_EQ(store.FlushWal(), IoStatus::kIoError);
  EXPECT_EQ(store.last_io_error(), IoStatus::kIoError);
}

INSTANTIATE_TEST_SUITE_P(BatchingPolicies, FlusherTest,
                         ::testing::Values(WalFlushPolicy::kGroup,
                                           WalFlushPolicy::kPipelined),
                         [](const auto& info) {
                           return std::string(WalFlushPolicyName(info.param));
                         });

}  // namespace
}  // namespace exhash::storage
