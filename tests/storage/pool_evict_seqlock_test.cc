// Eviction vs. the §4e seqlock, witnessed directly (labels storage,verify).
//
// The contract DESIGN.md §11 adds on top of §4e: page eviction and reload
// are *invisible* to optimistic readers.  Sequence words live in the
// store's always-resident seq chunks — eviction never bumps them — so a
// reader frozen between its copy and its validation tolerates a clean
// evict/reload cycle (byte-identical content, same seq), while any real
// write in that window still bumps the word and the reader's validation
// rejects the stale copy, exactly as if the pool were not there.
//
// Pin elision folds in transparently: the frozen readers below copied
// pin-free, the evictions in their window move the pool's epoch, and on
// release they recopy through the pinned fallback — but the *seq* they
// validate is still the one sampled before the freeze, so the clean cycle
// is accepted and the written-over copy is rejected just the same.
//
// The second half is the WAL steal ⇒ flush rule: a dirty frame's eviction
// makes its image the page's only copy outside the pool, so the log
// records that produced it must be durable first.  Under kLazy (commits
// buffered indefinitely) the eviction's flush is the *only* thing that
// makes the spilled state recoverable — and the deliberately broken
// test_evict_before_flush ordering observably loses it across a crash.

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/page_store.h"
#include "storage/wal.h"
#include "util/test_hooks.h"

namespace exhash::storage {
namespace {

constexpr size_t kPageSize = 128;

std::vector<std::byte> Pattern(std::byte fill) {
  return std::vector<std::byte>(kPageSize, fill);
}

PageStore::Options PooledOptions(size_t budget) {
  PageStore::Options o;
  o.page_size = kPageSize;
  o.page_budget = budget;
  return o;
}

// Blocks the hooked thread at its first kSeqValidate emission until
// Release() — the reader has copied the page out (pin-free, holding no
// claim on the frame at all) but has not yet compared sequence words.
// Everything the main thread then does to the store (faults, evictions,
// writes) lands inside the reader's validation window.  Same shape as
// seqlock_torn_test.cc's PauseAtPageCopy.
class PauseAtValidate {
 public:
  PauseAtValidate() {
    util::TestHooks::Install(&PauseAtValidate::Trampoline, this);
  }
  ~PauseAtValidate() { util::TestHooks::Clear(); }

  void AwaitPaused() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return paused_; });
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  static void Trampoline(void* ctx, util::HookPoint point, const void*) {
    static_cast<PauseAtValidate*>(ctx)->At(point);
  }

  void At(util::HookPoint point) {
    if (point != util::HookPoint::kSeqValidate) return;
    std::unique_lock<std::mutex> lk(mu_);
    if (armed_fired_) return;  // only the first validation pauses
    armed_fired_ = true;
    paused_ = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return released_; });
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_fired_ = false;
  bool paused_ = false;
  bool released_ = false;
};

// Evicts `page`'s frame by faulting same-shard neighbours through the
// latched read path (pages map to shards by id % shards, and a budget-2
// pool has one frame per shard, so any same-parity fault displaces it).
void EvictThroughNeighbours(PageStore* store, PageId page,
                            const std::vector<PageId>& pages) {
  std::vector<std::byte> scratch(kPageSize);
  for (PageId other : pages) {
    if (other != page && (other % 2) == (page % 2)) {
      store->Read(other, scratch.data());
    }
  }
}

// Baseline law: a budget far below the data set thrashes pages through
// the backing, and every optimistic read still returns exactly what was
// written — plus the accounting law hits + misses == frame_reads.
TEST(PoolEvictSeqlockTest, EvictReloadRoundTripUnderOptimisticReads) {
  PageStore store(PooledOptions(/*budget=*/2));
  constexpr int kPages = 8;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) pages.push_back(store.Alloc());
  for (int i = 0; i < kPages; ++i) {
    store.Write(pages[i], Pattern(std::byte(0x10 + i)).data());
  }
  std::vector<std::byte> out(kPageSize);
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(store.ReadOptimistic(pages[i], out.data())) << i;
    EXPECT_EQ(std::memcmp(out.data(), Pattern(std::byte(0x10 + i)).data(),
                          kPageSize),
              0)
        << "page " << i << " round-tripped through eviction damaged";
  }
  const PageStoreStats s = store.stats();
  EXPECT_GT(s.pool_evictions, 0u) << "budget 2 over 8 pages must thrash";
  EXPECT_EQ(s.pool_hits + s.pool_misses, s.frame_reads);
}

// A write landing between the reader's copy and its validation bumps the
// seq — even when the frame is also evicted and reloaded so the reader's
// copy came from a frame that no longer holds the page.  Validation must
// reject; the retry sees the new image.
TEST(PoolEvictSeqlockTest, WriteInValidationWindowRejectsTheStaleCopy) {
  PageStore store(PooledOptions(/*budget=*/2));
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(store.Alloc());
  const PageId p = pages[0];
  store.Write(p, Pattern(std::byte{0xAA}).data());

  PauseAtValidate pause;
  bool first_read_ok = true;
  std::vector<std::byte> first(kPageSize);
  std::vector<std::byte> retry(kPageSize);
  std::thread reader([&] {
    first_read_ok = store.ReadOptimistic(p, first.data());
    // Retry loop, as the bucket paths do: must converge on the new image.
    while (!store.ReadOptimistic(p, retry.data())) {
    }
  });
  pause.AwaitPaused();

  // Reader holds the 0xAA copy, pin already dropped.  Displace the frame,
  // overwrite the page (faulting it back into a frame), displace again:
  // the reader's copy now describes a frame image two evictions stale.
  EvictThroughNeighbours(&store, p, pages);
  store.Write(p, Pattern(std::byte{0xBB}).data());
  EvictThroughNeighbours(&store, p, pages);
  EXPECT_GT(store.stats().pool_evictions, 0u);

  pause.Release();
  reader.join();
  EXPECT_FALSE(first_read_ok)
      << "validation accepted a copy despite a write in the window";
  EXPECT_EQ(std::memcmp(retry.data(), Pattern(std::byte{0xBB}).data(),
                        kPageSize),
            0);
  EXPECT_GT(store.stats().optimistic_torn, 0u);
}

// The positive half: a *clean* evict + reload in the validation window
// changes nothing the reader can observe — reload restored byte-identical
// content and the seq never moved, so validation legitimately succeeds.
// Eviction is invisible to the §4e protocol.
TEST(PoolEvictSeqlockTest, CleanEvictReloadIsInvisibleToValidation) {
  PageStore store(PooledOptions(/*budget=*/2));
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(store.Alloc());
  const PageId p = pages[0];
  store.Write(p, Pattern(std::byte{0x5C}).data());
  // Settle the dirty frame so the witnessed cycle is a clean one.
  store.FlushPool();

  PauseAtValidate pause;
  bool read_ok = false;
  std::vector<std::byte> out(kPageSize);
  std::thread reader([&] { read_ok = store.ReadOptimistic(p, out.data()); });
  pause.AwaitPaused();

  const uint64_t evictions_before = store.stats().pool_evictions;
  EvictThroughNeighbours(&store, p, pages);  // evict p's frame
  std::vector<std::byte> scratch(kPageSize);
  store.Read(p, scratch.data());  // and reload it into a fresh frame
  EXPECT_GT(store.stats().pool_evictions, evictions_before);

  pause.Release();
  reader.join();
  EXPECT_TRUE(read_ok)
      << "clean evict/reload must not fail a reader's validation";
  EXPECT_EQ(std::memcmp(out.data(), Pattern(std::byte{0x5C}).data(),
                        kPageSize),
            0);
}

// --- The steal ⇒ flush-WAL rule, witnessed across a crash ---

PageStore::Options LazyWalOptions(size_t budget) {
  PageStore::Options o;
  o.page_size = kPageSize;
  o.wal = true;
  o.wal_flush_policy = WalFlushPolicy::kLazy;
  o.page_budget = budget;
  return o;
}

// Under kLazy nothing flushes the log — except a dirty eviction, whose
// before_writeback hook must make the spilled frame's producing records
// durable.  Crash after the eviction: the spilled write recovers.
TEST(PoolEvictSeqlockTest, DirtyEvictionMakesSpilledStateRecoverable) {
  PageStore store(LazyWalOptions(/*budget=*/2));
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(store.Alloc());
  const PageId p = pages[0];
  store.Write(p, Pattern(std::byte{0x01}).data());
  ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);  // durable pre-state

  store.Write(p, Pattern(std::byte{0x09}).data());  // commit stays buffered
  EvictThroughNeighbours(&store, p, pages);         // steal the dirty frame
  ASSERT_GT(store.stats().pool_writebacks, 0u)
      << "the witness needs a real dirty eviction";

  store.CrashNow(/*seed=*/21);
  PageStore::Options r = LazyWalOptions(2);
  r.recover_image = store.TakeCrashImage();
  PageStore recovered(r);
  ASSERT_TRUE(recovered.Recover().ok());
  std::vector<std::byte> out(kPageSize);
  recovered.Read(p, out.data());
  EXPECT_EQ(std::memcmp(out.data(), Pattern(std::byte{0x09}).data(),
                        kPageSize),
            0)
      << "spilled-but-unrecoverable: eviction did not flush the log";
}

// BROKEN ordering (test_evict_before_flush): the frame spills without the
// flush, the crash eats the buffered commit, and recovery serves the
// checkpointed pre-state — the anomaly the correct ordering rules out.
TEST(PoolEvictSeqlockTest, BrokenEvictBeforeFlushLosesSpilledState) {
  PageStore::Options o = LazyWalOptions(/*budget=*/2);
  o.test_evict_before_flush = true;
  PageStore store(o);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(store.Alloc());
  const PageId p = pages[0];
  store.Write(p, Pattern(std::byte{0x01}).data());
  ASSERT_EQ(store.Checkpoint(), IoStatus::kOk);

  store.Write(p, Pattern(std::byte{0x09}).data());
  EvictThroughNeighbours(&store, p, pages);
  ASSERT_GT(store.stats().pool_writebacks, 0u);

  store.CrashNow(/*seed=*/22);
  PageStore::Options r = LazyWalOptions(2);
  r.recover_image = store.TakeCrashImage();
  PageStore recovered(r);
  ASSERT_TRUE(recovered.Recover().ok());
  std::vector<std::byte> out(kPageSize);
  recovered.Read(p, out.data());
  EXPECT_EQ(std::memcmp(out.data(), Pattern(std::byte{0x01}).data(),
                        kPageSize),
            0)
      << "broken ordering was not observable: the spilled write survived";
}

}  // namespace
}  // namespace exhash::storage
