// BufferPool unit laws (DESIGN.md §11): clock-hand victim selection
// (victim is unpinned with its second chance spent), pin-leak detection
// (shutdown with a live pin dies naming the page), budget-1 thrash
// correctness, and dirty-eviction ordering (the WAL-flush callback runs
// before every dirty writeback — and the deliberately broken
// test_evict_before_flush variant is observably different).  The
// PageStore-level crash witness for the same ordering lives in
// pool_evict_seqlock_test.cc alongside the seqlock witnesses.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace exhash::storage {
namespace {

constexpr size_t kPageSize = 128;

// Scripted platter: pages are a std::map of byte vectors, and every
// callback appends to an event log so tests can assert exact fault /
// writeback / flush ordering.
struct RecordingBacking {
  std::map<PageId, std::vector<std::byte>> pages;
  std::vector<std::string> events;

  static void Load(void* ctx, PageId page, std::byte* out) {
    auto* self = static_cast<RecordingBacking*>(ctx);
    self->events.push_back("load:" + std::to_string(page));
    auto it = self->pages.find(page);
    if (it == self->pages.end()) {
      std::memset(out, 0, kPageSize);
      return;
    }
    std::memcpy(out, it->second.data(), kPageSize);
  }

  static void Store(void* ctx, PageId page, const std::byte* in) {
    auto* self = static_cast<RecordingBacking*>(ctx);
    self->events.push_back("store:" + std::to_string(page));
    self->pages[page].assign(in, in + kPageSize);
  }

  static void Flush(void* ctx) {
    static_cast<RecordingBacking*>(ctx)->events.push_back("flush");
  }

  BufferPool::Backing AsBacking(bool with_flush) {
    BufferPool::Backing b;
    b.ctx = this;
    b.load = &Load;
    b.store = &Store;
    if (with_flush) b.before_writeback = &Flush;
    return b;
  }
};

BufferPool::Options PoolOptions(size_t budget, size_t shards = 1) {
  BufferPool::Options o;
  o.page_size = kPageSize;
  o.budget = budget;
  o.shards = shards;
  return o;
}

void Touch(BufferPool* pool, PageId page) {
  pool->Pin(page);
  pool->Unpin(page);
}

void WritePattern(BufferPool* pool, PageId page, std::byte fill) {
  std::byte* f = pool->Pin(page);
  std::memset(f, int(fill), kPageSize);
  pool->Unpin(page, /*dirty=*/true);
}

// With every frame's ref bit set, one full sweep spends everyone's second
// chance and the frame at the hand is claimed; a frame whose ref was
// cleared by an earlier sweep (and not re-touched) is claimed before a
// freshly re-touched one.
TEST(BufferPoolClockTest, SecondChanceProtectsTouchedFrame) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(2), backing.AsBacking(false));
  pool.EnsureCapacity(8);

  Touch(&pool, 0);
  Touch(&pool, 1);
  // Sweep clears both refs, claims frame 0 -> page 0 evicted for page 2.
  Touch(&pool, 2);
  EXPECT_EQ(pool.stats().evictions, 1u);
  // Page 1's second chance is spent (ref cleared by that sweep); page 2's
  // is fresh.  The next fault must claim page 1's frame, not page 2's.
  Touch(&pool, 3);
  EXPECT_EQ(pool.stats().evictions, 2u);
  const uint64_t hits_before = pool.stats().hits;
  Touch(&pool, 2);  // still resident: survived on its second chance
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
  // And the eviction order in the log confirms it: page 0 then page 1.
  std::vector<std::string> loads;
  for (const auto& e : backing.events) loads.push_back(e);
  EXPECT_EQ(loads, (std::vector<std::string>{"load:0", "load:1", "load:2",
                                             "load:3", /*hit on 2*/}));
  std::string err;
  EXPECT_TRUE(pool.CheckQuiescent(&err)) << err;
}

// A pinned frame is never the victim, whatever the clock hand says.
TEST(BufferPoolClockTest, VictimIsNeverPinned) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(2), backing.AsBacking(false));
  pool.EnsureCapacity(8);

  std::byte* held = pool.Pin(0);  // frame 0, pinned for the whole test
  std::memset(held, 0x5A, kPageSize);
  Touch(&pool, 1);  // frame 1
  // Both faults below must claim frame 1 — frame 0's pin count blocks the
  // claim CAS by construction.
  Touch(&pool, 2);
  Touch(&pool, 3);
  EXPECT_EQ(pool.stats().evictions, 2u);
  // The pinned frame's memory was never touched by those faults.
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(held[i], std::byte{0x5A});
  }
  const uint64_t hits_before = pool.stats().hits;
  pool.Pin(0);  // still resident
  EXPECT_EQ(pool.stats().hits, hits_before + 1);
  pool.Unpin(0);
  pool.Unpin(0, /*dirty=*/true);
  std::string err;
  EXPECT_TRUE(pool.CheckQuiescent(&err)) << err;
}

// Budget 1: every distinct-page access thrashes through the single frame,
// and dirty writeback + reload still round-trips every byte.
TEST(BufferPoolTest, BudgetOneThrashPreservesContents) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(1), backing.AsBacking(false));
  pool.EnsureCapacity(16);

  for (PageId p = 0; p < 8; ++p) {
    WritePattern(&pool, p, std::byte(0xA0 + p));
  }
  for (PageId p = 0; p < 8; ++p) {
    const std::byte* f = pool.Pin(p);
    for (size_t i = 0; i < kPageSize; ++i) {
      ASSERT_EQ(f[i], std::byte(0xA0 + p)) << "page " << p;
    }
    pool.Unpin(p);
  }
  const BufferPoolStats s = pool.stats();
  // Every access was a miss (the single frame can never hold the next
  // page), every miss after the first evicted, every eviction wrote back
  // a dirty frame on the first lap.
  EXPECT_EQ(s.hits, 0u);  // the single frame can never serve a repeat
  EXPECT_EQ(s.misses, 16u);
  EXPECT_EQ(s.pins_acquired, 16u);
  EXPECT_EQ(s.evictions, 15u);
  EXPECT_EQ(s.writebacks, 8u);
  EXPECT_EQ(s.resident, 1u);
  std::string err;
  EXPECT_TRUE(pool.CheckQuiescent(&err)) << err;
}

// Same-page pins nest (refcounted hits) and the ledger still balances.
TEST(BufferPoolTest, NestedSamePagePinsAreCountedHits) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(2), backing.AsBacking(false));
  pool.EnsureCapacity(4);

  std::byte* a = pool.Pin(0);
  std::byte* b = pool.Pin(0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().pinned_peak, 2u);
  std::string err;
  EXPECT_FALSE(pool.CheckQuiescent(&err));  // two live pins
  pool.Unpin(0);
  pool.Unpin(0);
  EXPECT_TRUE(pool.CheckQuiescent(&err)) << err;
  EXPECT_EQ(pool.stats().pins_acquired, pool.stats().pins_released);
}

// The pool refuses shutdown with a live pin and names the page: freeing
// the frame arena under an open access bracket would be a use-after-free.
TEST(BufferPoolDeathTest, ShutdownWithLivePinDiesNamingThePage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RecordingBacking backing;
        BufferPool pool(PoolOptions(2), backing.AsBacking(false));
        pool.EnsureCapacity(8);
        pool.Pin(7);
        // Leak the pin; the destructor must abort, not free the arena.
      },
      "live pin\\(s\\) on page 7");
}

// CheckQuiescent names the offending page without dying — the form the
// soak/capacity tiers assert at every quiescent point.
TEST(BufferPoolTest, CheckQuiescentNamesLeakedPin) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(2), backing.AsBacking(false));
  pool.EnsureCapacity(8);
  pool.Pin(5);
  std::string err;
  EXPECT_FALSE(pool.CheckQuiescent(&err));
  EXPECT_NE(err.find("page 5"), std::string::npos) << err;
  pool.Unpin(5);
  EXPECT_TRUE(pool.CheckQuiescent(&err)) << err;
}

// The steal ⇒ flush rule at the pool layer: every dirty writeback (evict
// or FlushAll) is immediately preceded by the before_writeback callback.
TEST(BufferPoolTest, DirtyEvictionFlushesBeforeWriteback) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(1), backing.AsBacking(true));
  pool.EnsureCapacity(8);

  WritePattern(&pool, 0, std::byte{0x11});
  WritePattern(&pool, 1, std::byte{0x22});  // evicts dirty page 0
  WritePattern(&pool, 2, std::byte{0x33});  // evicts dirty page 1
  pool.FlushAll();                          // writes back dirty page 2

  ASSERT_EQ(pool.stats().writebacks, 3u);
  for (size_t i = 0; i < backing.events.size(); ++i) {
    if (backing.events[i].rfind("store:", 0) == 0) {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(backing.events[i - 1], "flush")
          << "store at event " << i << " not preceded by a flush";
    }
  }
}

// BROKEN variant: with test_evict_before_flush the flush callback never
// runs — the exact ordering violation the crash witness in
// pool_evict_seqlock_test.cc turns into lost durable state.
TEST(BufferPoolTest, TestEvictBeforeFlushSkipsTheFlush) {
  RecordingBacking backing;
  BufferPool::Options opts = PoolOptions(1);
  opts.test_evict_before_flush = true;
  BufferPool pool(opts, backing.AsBacking(true));
  pool.EnsureCapacity(8);

  WritePattern(&pool, 0, std::byte{0x11});
  WritePattern(&pool, 1, std::byte{0x22});  // evicts dirty page 0, no flush
  pool.FlushAll();

  ASSERT_EQ(pool.stats().writebacks, 2u);
  for (const auto& e : backing.events) {
    EXPECT_NE(e, "flush");
  }
}

// The pin-elision protocol's observable pieces: ResidentFrame answers
// nullptr for unmapped pages and the frame memory for mapped ones, and the
// eviction epoch moves exactly when a mapped frame is retargeted — never
// on a first fill, so warmup stays invisible to pin-free readers.
TEST(BufferPoolEpochTest, EpochMovesOnRetargetOnly) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(2), backing.AsBacking(false));
  pool.EnsureCapacity(8);

  EXPECT_EQ(pool.ResidentFrame(0, pool.evict_epoch()), nullptr);
  EXPECT_EQ(pool.evict_epoch(), 0u);
  WritePattern(&pool, 0, std::byte{0x5A});
  WritePattern(&pool, 1, std::byte{0x5B});
  // Two fresh-frame fills: mapped now, epoch untouched.
  EXPECT_EQ(pool.evict_epoch(), 0u);
  const std::byte* f0 = pool.ResidentFrame(0, pool.evict_epoch());
  ASSERT_NE(f0, nullptr);
  EXPECT_EQ(f0[0], std::byte{0x5A});
  // Displacing page 0 retargets its frame: epoch moves, mapping gone.
  Touch(&pool, 2);
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.evict_epoch(), 1u);
  EXPECT_EQ(pool.ResidentFrame(0, pool.evict_epoch()), nullptr);
  ASSERT_NE(pool.ResidentFrame(2, pool.evict_epoch()), nullptr);
  std::string err;
  EXPECT_TRUE(pool.CheckQuiescent(&err)) << err;
}

// The epoch-bracket read protocol end to end, as PageStore uses it: a
// copy bracketed by equal epoch samples is exactly the frame's bytes; a
// retarget between the samples is detected (unequal), telling the reader
// to fall back to the pinned path.
TEST(BufferPoolEpochTest, EpochBracketCertifiesOrRejectsACopy) {
  RecordingBacking backing;
  BufferPool pool(PoolOptions(2), backing.AsBacking(false));
  pool.EnsureCapacity(8);
  WritePattern(&pool, 0, std::byte{0x42});
  WritePattern(&pool, 1, std::byte{0x43});  // both frames mapped

  // Quiet pool: the bracket certifies the copy.
  uint64_t e0 = pool.evict_epoch();
  const std::byte* f = pool.ResidentFrame(0, e0);
  ASSERT_NE(f, nullptr);
  std::vector<std::byte> copy(f, f + kPageSize);
  EXPECT_EQ(pool.evict_epoch(), e0);
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(copy[i], std::byte{0x42});
  }

  // Retarget inside the bracket: the second sample exposes it.
  e0 = pool.evict_epoch();
  ASSERT_NE(pool.ResidentFrame(0, e0), nullptr);
  Touch(&pool, 2);  // displaces page 0 mid-"copy"
  EXPECT_NE(pool.evict_epoch(), e0);
}

// Clean evictions never write back: reload serves the platter's copy.
TEST(BufferPoolTest, CleanEvictionSkipsWriteback) {
  RecordingBacking backing;
  backing.pages[0].assign(kPageSize, std::byte{0x77});
  BufferPool pool(PoolOptions(1), backing.AsBacking(true));
  pool.EnsureCapacity(8);

  Touch(&pool, 0);
  Touch(&pool, 1);  // evicts clean page 0
  EXPECT_EQ(pool.stats().evictions, 1u);
  EXPECT_EQ(pool.stats().writebacks, 0u);
  const std::byte* f = pool.Pin(0);  // reload: platter copy intact
  EXPECT_EQ(f[0], std::byte{0x77});
  pool.Unpin(0);
}

}  // namespace
}  // namespace exhash::storage
