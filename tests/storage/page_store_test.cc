#include "storage/page_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "test_paths.h"

namespace exhash::storage {
namespace {

TEST(PageStoreTest, AllocReturnsDenseIds) {
  PageStore store({.page_size = 128});
  EXPECT_EQ(store.Alloc(), 0u);
  EXPECT_EQ(store.Alloc(), 1u);
  EXPECT_EQ(store.Alloc(), 2u);
  EXPECT_EQ(store.extent(), 3u);
}

TEST(PageStoreTest, ReadWriteRoundtrip) {
  PageStore store({.page_size = 128});
  const PageId p = store.Alloc();
  std::vector<std::byte> in(128);
  for (size_t i = 0; i < in.size(); ++i) in[i] = std::byte(i);
  store.Write(p, in.data());
  std::vector<std::byte> out(128);
  store.Read(p, out.data());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 128), 0);
}

TEST(PageStoreTest, DeallocatedPagesAreReused) {
  PageStore store({.page_size = 128});
  const PageId a = store.Alloc();
  (void)store.Alloc();
  store.Dealloc(a);
  EXPECT_EQ(store.Alloc(), a);
  EXPECT_EQ(store.extent(), 2u);  // no new page materialized
}

TEST(PageStoreTest, PoisonOnDeallocScribblesPage) {
  PageStore store({.page_size = 64, .poison_on_dealloc = true});
  const PageId p = store.Alloc();
  std::vector<std::byte> zero(64, std::byte{0});
  store.Write(p, zero.data());
  store.Dealloc(p);
  std::vector<std::byte> out(64);
  // Reading a deallocated page is a protocol violation; the poison makes it
  // detectable.
  store.Read(p, out.data());
  EXPECT_EQ(out[0], std::byte{0xDB});
  EXPECT_EQ(out[63], std::byte{0xDB});
}

TEST(PageStoreTest, StatsCountOperations) {
  PageStore store({.page_size = 64});
  const PageId p = store.Alloc();
  std::vector<std::byte> buf(64, std::byte{1});
  store.Write(p, buf.data());
  store.Read(p, buf.data());
  store.Read(p, buf.data());
  const PageStoreStats s = store.stats();
  EXPECT_EQ(s.allocs, 1u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.live_pages, 1u);
}

TEST(PageStoreTest, ResetStatsZeroesIoCounters) {
  PageStore store({.page_size = 64});
  const PageId p = store.Alloc();
  std::vector<std::byte> buf(64, std::byte{1});
  store.Write(p, buf.data());
  store.ResetStats();
  EXPECT_EQ(store.stats().writes, 0u);
}

TEST(PageStoreTest, ManyPagesAcrossChunks) {
  // Force multiple internal chunks (1024 pages each) and verify isolation.
  PageStore store({.page_size = 64});
  constexpr int kPages = 3000;
  std::vector<PageId> ids(kPages);
  std::vector<std::byte> buf(64);
  for (int i = 0; i < kPages; ++i) {
    ids[i] = store.Alloc();
    std::memset(buf.data(), i & 0xff, 64);
    store.Write(ids[i], buf.data());
  }
  for (int i = 0; i < kPages; ++i) {
    store.Read(ids[i], buf.data());
    EXPECT_EQ(buf[0], std::byte(i & 0xff)) << i;
    EXPECT_EQ(buf[63], std::byte(i & 0xff)) << i;
  }
}

// The load-bearing contract: pages are read and written as single
// operations (section 2.1).  Writers flood a page with self-consistent
// patterns; readers must never observe a torn mix.
TEST(PageStoreTest, PageTransfersAreAtomic) {
  constexpr size_t kPageSize = 512;
  PageStore store({.page_size = kPageSize});
  const PageId p = store.Alloc();
  std::vector<std::byte> init(kPageSize, std::byte{0});
  store.Write(p, init.data());

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    std::vector<std::byte> buf(kPageSize);
    uint8_t pattern = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::memset(buf.data(), ++pattern, kPageSize);
      store.Write(p, buf.data());
    }
  });
  std::thread reader([&] {
    std::vector<std::byte> buf(kPageSize);
    for (int i = 0; i < 20000; ++i) {
      store.Read(p, buf.data());
      for (size_t j = 1; j < kPageSize; ++j) {
        if (buf[j] != buf[0]) {
          torn.store(true);
          return;
        }
      }
    }
  });
  reader.join();
  stop.store(true);
  writer.join();
  EXPECT_FALSE(torn.load());
}

// --- file backing ---

class FilePageStoreTest : public ::testing::Test {
 protected:
  std::string Path() { return testpaths::PerTestBackingFile("pages"); }
  void TearDown() override { std::remove(Path().c_str()); }
};

TEST_F(FilePageStoreTest, ReadWriteRoundtripOnDisk) {
  PageStore store({.page_size = 128, .backing_file = Path()});
  const PageId a = store.Alloc();
  const PageId b = store.Alloc();
  std::vector<std::byte> pa(128, std::byte{0xAA});
  std::vector<std::byte> pb(128, std::byte{0xBB});
  store.Write(a, pa.data());
  store.Write(b, pb.data());
  std::vector<std::byte> out(128);
  store.Read(a, out.data());
  EXPECT_EQ(out[0], std::byte{0xAA});
  EXPECT_EQ(out[127], std::byte{0xAA});
  store.Read(b, out.data());
  EXPECT_EQ(out[64], std::byte{0xBB});
}

TEST_F(FilePageStoreTest, PoisonOnDiskDealloc) {
  PageStore store(
      {.page_size = 64, .poison_on_dealloc = true, .backing_file = Path()});
  const PageId p = store.Alloc();
  std::vector<std::byte> zero(64, std::byte{0});
  store.Write(p, zero.data());
  store.Dealloc(p);
  std::vector<std::byte> out(64);
  store.Read(p, out.data());
  EXPECT_EQ(out[0], std::byte{0xDB});
}

TEST_F(FilePageStoreTest, AtomicPageTransfersOnDisk) {
  PageStore store({.page_size = 256, .backing_file = Path()});
  const PageId p = store.Alloc();
  std::vector<std::byte> init(256, std::byte{0});
  store.Write(p, init.data());
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    std::vector<std::byte> buf(256);
    uint8_t pattern = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::memset(buf.data(), ++pattern, 256);
      store.Write(p, buf.data());
    }
  });
  std::vector<std::byte> buf(256);
  for (int i = 0; i < 3000; ++i) {
    store.Read(p, buf.data());
    for (size_t j = 1; j < 256; ++j) {
      if (buf[j] != buf[0]) {
        torn.store(true);
        break;
      }
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(torn.load());
}

TEST(PageStoreTest, ConcurrentAllocsAreUnique) {
  PageStore store({.page_size = 64});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<PageId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(store.Alloc());
    });
  }
  for (auto& t : threads) t.join();
  std::vector<PageId> all;
  for (auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), size_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace exhash::storage
